//! Bit-parallel fault simulation: up to **64 scenario lanes per `u64`
//! memory word**, executing each March operation once across all lanes.
//!
//! # Lane-packing layout
//!
//! The scalar engine ([`crate::engine`]) simulates one *scenario* at a
//! time: a concrete fault site × power-up pattern × sense-latch value,
//! re-executed for every `⇕` resolution vector. For a pair-fault model on
//! an `n`-cell memory that is `n·(n−1)` sites × up to 8 patterns — a few
//! hundred full March executions per resolution, each touching one bit
//! of state per memory cell.
//!
//! This module transposes that sweep. The memory is a `Vec<u64>` with one
//! word per cell address; **bit `l` of word `a` is the value cell `a`
//! holds in scenario lane `l`**. All lanes share the same fault *model*
//! (fault semantics are bitwise formulas over whole words) but each lane
//! carries its own
//!
//! * site placement (single cell, or aggressor/victim pair),
//! * power-up pattern, and
//! * sense-amplifier latch power-up value (stuck-open only),
//!
//! so one March execution over the packed words advances up to 64
//! scalar scenarios at once. Site placement is precompiled into per-
//! address masks (`single_mask[a]` = lanes whose faulty cell is `a`,
//! `aggr_mask[a]` = lanes whose aggressor is `a`, plus victim groups
//! keyed by aggressor address), so every faulty read/write is a handful
//! of AND/OR/XOR word operations. Address order is shared control flow,
//! not per-lane data, so `⇕` resolution vectors stay an outer loop —
//! exactly mirroring the scalar scenario enumeration.
//!
//! Detection bookkeeping is a single `u64`: every read ORs
//! `out ^ expected` into a mismatch accumulator, and a site counts as
//! **detected** only when every one of its lanes mismatches under every
//! resolution — the same guaranteed-detection rule as
//! [`crate::engine::detects`], verified bit-for-bit by the differential
//! test suite.
//!
//! Entry points mirror [`crate::coverage`]: [`model_coverage`],
//! [`coverage_report`], [`covers_all`], plus the
//! [`BitSimVerifier`](crate::verify::BitSimVerifier) backend built on
//! them.

use crate::coverage::{CoverageReport, ModelCoverage};
use crate::engine::{latch_values, power_up_patterns, resolution_vectors, FaultSite};
use crate::memory::SiteCells;
use marchgen_faults::{
    lowering, FaultBehavior, FaultModel, ReadOutput, Role, StoreEffect, WriteEffect,
};
use marchgen_march::{Direction, MarchOp, MarchTest};
use marchgen_model::Bit;

/// Broadcast of a scalar bit across all 64 lanes.
fn splat(bit: Bit) -> u64 {
    match bit {
        Bit::Zero => 0,
        Bit::One => !0,
    }
}

/// One scenario lane: which site it simulates and its power-up state.
///
/// Shared with [`crate::widesim`], which packs the same lanes — in the
/// same enumeration order — into multi-word blocks.
#[derive(Debug, Clone)]
pub(crate) struct Lane {
    /// Index into the site list the sweep runs over.
    pub(crate) site_index: usize,
    /// Site placement (drives the address masks).
    pub(crate) cells: SiteCells,
    /// Power-up pattern of the whole array.
    pub(crate) pattern: Vec<Bit>,
    /// Sense-amplifier latch power-up value.
    pub(crate) latch: Bit,
}

/// Every scenario lane of a site sweep, in the scalar engine's
/// enumeration order (site-major, then pattern, then latch).
pub(crate) fn lanes_for(sites: &[FaultSite], n: usize) -> Vec<Lane> {
    let mut lanes = Vec::new();
    for (site_index, site) in sites.iter().enumerate() {
        for pattern in power_up_patterns(site, n) {
            for &latch in latch_values(site) {
                lanes.push(Lane {
                    site_index,
                    cells: site.cells,
                    pattern: pattern.clone(),
                    latch,
                });
            }
        }
    }
    lanes
}

/// A packed batch of up to 64 scenario lanes sharing one fault model.
///
/// Like the scalar `FaultyMemory`, the batch is a generic interpreter
/// over the model's [`FaultBehavior`] rule table — fault semantics are
/// bitwise formulas derived from the rules, with no per-variant matches.
struct LaneBatch {
    n: usize,
    behavior: FaultBehavior,
    /// Post-power-up packed contents, restored on every [`Self::reset`].
    init: Vec<u64>,
    latch_init: u64,
    /// Per address: lanes whose single-cell site is that address.
    single_mask: Vec<u64>,
    /// Per address: lanes whose aggressor is that address.
    aggr_mask: Vec<u64>,
    /// Per aggressor address: victim addresses with their lane masks.
    victims_of: Vec<Vec<(usize, u64)>>,
    /// Distinct (aggressor address, lane mask) groups — CFst condition.
    aggr_groups: Vec<(usize, u64)>,
    /// Distinct (victim address, lane mask) groups — CFst assignment.
    vict_groups: Vec<(usize, u64)>,
    // Execution state.
    cells: Vec<u64>,
    latch: u64,
    /// Operation history for dynamic faults: the immediately preceding
    /// operation, when it was a write (address, value). Shared control
    /// flow — every lane sees the same op stream, so one scalar slot
    /// serves all 64 lanes.
    last_write: Option<(usize, Bit)>,
    mismatch: u64,
}

impl LaneBatch {
    /// Packs `lanes` (at most 64) into one batch.
    fn new(model: FaultModel, n: usize, lanes: &[Lane]) -> LaneBatch {
        assert!(lanes.len() <= 64, "a batch holds at most 64 lanes");
        let mut single_mask = vec![0u64; n];
        let mut aggr_mask = vec![0u64; n];
        let mut victims_of: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut init = vec![0u64; n];
        let mut latch_init = 0u64;
        for (l, lane) in lanes.iter().enumerate() {
            let bit = 1u64 << l;
            match lane.cells {
                SiteCells::Single(c) => single_mask[c] |= bit,
                SiteCells::Pair { aggressor, victim } => {
                    aggr_mask[aggressor] |= bit;
                    match victims_of[aggressor].iter_mut().find(|(v, _)| *v == victim) {
                        Some((_, mask)) => *mask |= bit,
                        None => victims_of[aggressor].push((victim, bit)),
                    }
                }
            }
            for (addr, &value) in lane.pattern.iter().enumerate() {
                if value == Bit::One {
                    init[addr] |= bit;
                }
            }
            if lane.latch == Bit::One {
                latch_init |= bit;
            }
        }
        let aggr_groups: Vec<(usize, u64)> = aggr_mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != 0)
            .map(|(a, &m)| (a, m))
            .collect();
        let mut vict_groups: Vec<(usize, u64)> = Vec::new();
        for groups in &victims_of {
            for &(v, m) in groups {
                match vict_groups.iter_mut().find(|(addr, _)| *addr == v) {
                    Some((_, mask)) => *mask |= m,
                    None => vict_groups.push((v, m)),
                }
            }
        }
        let mut batch = LaneBatch {
            n,
            behavior: lowering::behavior(model),
            init,
            latch_init,
            single_mask,
            aggr_mask,
            victims_of,
            aggr_groups,
            vict_groups,
            cells: vec![0u64; n],
            latch: 0,
            last_write: None,
            mismatch: 0,
        };
        // Apply power-up consequences once, into the restorable image
        // (mirrors `FaultyMemory::power_up`).
        batch.cells.copy_from_slice(&batch.init);
        if let Some(v) = batch.behavior.powerup_force {
            let vb = splat(v);
            for addr in 0..n {
                let sm = batch.single_mask[addr];
                batch.cells[addr] = (batch.cells[addr] & !sm) | (vb & sm);
            }
        }
        batch.apply_invariant();
        batch.init.copy_from_slice(&batch.cells);
        batch
    }

    /// Restores the power-up state for a fresh scenario execution.
    fn reset(&mut self) {
        self.cells.copy_from_slice(&self.init);
        self.latch = self.latch_init;
        self.last_write = None;
        self.mismatch = 0;
    }

    /// State coupling is a *condition*, not an event (see
    /// `FaultyMemory`): enforce the behaviour's invariant after every
    /// operation, lane-wise.
    fn apply_invariant(&mut self) {
        if let Some(inv) = self.behavior.invariant {
            let mut cond = 0u64;
            for &(a, m) in &self.aggr_groups {
                let held = if inv.when == Bit::One {
                    self.cells[a]
                } else {
                    !self.cells[a]
                };
                cond |= held & m;
            }
            for &(v, m) in &self.vict_groups {
                let active = cond & m;
                self.cells[v] = if inv.force == Bit::One {
                    self.cells[v] | active
                } else {
                    self.cells[v] & !active
                };
            }
        }
    }

    /// Lanes at which `role` resolves to `addr`.
    fn role_mask(&self, role: Role, addr: usize) -> u64 {
        match role {
            Role::Single => self.single_mask[addr],
            Role::Aggressor => self.aggr_mask[addr],
        }
    }

    /// Lanes whose word `w` matches an optional bit trigger.
    fn value_held(w: u64, trigger: Option<Bit>) -> u64 {
        match trigger {
            None => !0,
            Some(Bit::One) => w,
            Some(Bit::Zero) => !w,
        }
    }

    /// Lane-parallel `write(addr, value)`: a generic interpretation of
    /// the behaviour's write rules (same two-pass order as
    /// `FaultyMemory::write`).
    fn write(&mut self, addr: usize, value: Bit) {
        let vb = splat(value);
        let cur = self.cells[addr];
        // Pass 1: rules on the written cell itself (block / force).
        let mut blocked = 0u64;
        let mut force_mask = 0u64;
        let mut force_val = 0u64;
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if rule.value.is_some_and(|v| v != value) {
                continue;
            }
            let armed = self.role_mask(rule.at, addr) & Self::value_held(cur, rule.pre);
            match rule.effect {
                WriteEffect::Block => blocked |= armed,
                WriteEffect::Force(v) => {
                    force_mask |= armed;
                    if v == Bit::One {
                        force_val |= armed;
                    } else {
                        force_val &= !armed;
                    }
                }
                WriteEffect::CopyToVictim
                | WriteEffect::FlipVictim
                | WriteEffect::ForceVictim(_) => {}
            }
        }
        self.cells[addr] =
            (cur & blocked) | (force_val & force_mask & !blocked) | (vb & !blocked & !force_mask);
        // Pass 2: coupled-victim effects, armed on the pre-write content.
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if rule.value.is_some_and(|v| v != value) {
                continue;
            }
            let armed = self.role_mask(rule.at, addr) & Self::value_held(cur, rule.pre);
            if armed == 0 {
                continue;
            }
            match rule.effect {
                WriteEffect::CopyToVictim => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        let hit = m & armed;
                        self.cells[v] = (self.cells[v] & !hit) | (vb & hit);
                    }
                }
                WriteEffect::FlipVictim => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        self.cells[v] ^= m & armed;
                    }
                }
                WriteEffect::ForceVictim(f) => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        let forced = m & armed;
                        self.cells[v] = if f == Bit::One {
                            self.cells[v] | forced
                        } else {
                            self.cells[v] & !forced
                        };
                    }
                }
                WriteEffect::Block | WriteEffect::Force(_) => {}
            }
        }
        self.last_write = Some((addr, value));
        self.apply_invariant();
    }

    /// Lane-parallel `read(addr)`: a generic interpretation of the
    /// behaviour's read rules (first armed rule wins per lane),
    /// returning the per-lane device outputs.
    fn read(&mut self, addr: usize) -> u64 {
        let cur = self.cells[addr];
        let mut out = cur;
        let mut taken = 0u64;
        for ri in 0..self.behavior.read_rules.len() {
            let rule = self.behavior.read_rules[ri];
            let dyn_ok = match rule.after_write {
                None => !0u64,
                Some(x) if self.last_write == Some((addr, x)) => !0u64,
                Some(_) => 0,
            };
            let m =
                self.role_mask(rule.at, addr) & Self::value_held(cur, rule.holds) & dyn_ok & !taken;
            if m == 0 {
                continue;
            }
            taken |= m;
            match rule.output {
                ReadOutput::Stored => {}
                ReadOutput::Complement => out = (out & !m) | (!cur & m),
                ReadOutput::Latch => out = (out & !m) | (self.latch & m),
                ReadOutput::Victim => {
                    out &= !m;
                    for k in 0..self.victims_of[addr].len() {
                        let (v, vm) = self.victims_of[addr][k];
                        out |= self.cells[v] & vm & m;
                    }
                }
            }
            if rule.store == StoreEffect::Flip {
                self.cells[addr] ^= m;
            }
        }
        self.last_write = None;
        self.latch = out;
        self.apply_invariant();
        out
    }

    /// Lane-parallel wait period (mirrors `FaultyMemory::delay`).
    fn delay(&mut self) {
        if let Some(x) = self.behavior.delay_flip {
            for addr in 0..self.n {
                let sm = self.single_mask[addr];
                if sm == 0 {
                    continue;
                }
                let cur = self.cells[addr];
                let holds_x = if x == Bit::One { cur } else { !cur };
                self.cells[addr] = cur ^ (sm & holds_x);
            }
        }
        self.last_write = None;
        self.apply_invariant();
    }

    /// Executes `test` once across all lanes under one `⇕` resolution
    /// vector, returning the lanes that produced at least one mismatching
    /// read. Control flow mirrors [`crate::engine::run`] exactly.
    fn run(&mut self, test: &MarchTest, resolution: &[Direction]) -> u64 {
        self.reset();
        let mut res_iter = resolution.iter();
        for element in test.elements() {
            let dir = match element.direction {
                Direction::Any => *res_iter.next().expect("a resolution per ⇕ element"),
                d => d,
            };
            if element.ops.len() == 1 && element.ops[0] == MarchOp::Delay {
                self.delay();
                continue;
            }
            match dir {
                Direction::Down => {
                    for addr in (0..self.n).rev() {
                        self.visit(addr, &element.ops);
                    }
                }
                _ => {
                    for addr in 0..self.n {
                        self.visit(addr, &element.ops);
                    }
                }
            }
        }
        self.mismatch
    }

    fn visit(&mut self, addr: usize, ops: &[MarchOp]) {
        for &op in ops {
            match op {
                MarchOp::Write(d) => self.write(addr, d),
                MarchOp::Delay => self.delay(),
                MarchOp::Read(expected) => {
                    let got = self.read(addr);
                    self.mismatch |= got ^ splat(expected);
                }
            }
        }
    }
}

/// Runs the packed sweep for one model, returning per-site detection
/// verdicts (in [`FaultSite::enumerate`] order). With `early_exit`, the
/// sweep stops at the first undetected scenario — only the boolean
/// "every site detected" remains meaningful then.
fn sweep(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
    sites: &[FaultSite],
    early_exit: bool,
) -> Vec<bool> {
    let resolutions = resolution_vectors(test);
    let lanes = lanes_for(sites, n);
    let mut detected = vec![true; sites.len()];
    for chunk in lanes.chunks(64) {
        let full: u64 = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut batch = LaneBatch::new(model, n, chunk);
        let mut all = full;
        for resolution in &resolutions {
            all &= batch.run(test, resolution);
            // Some lane already has a clean scenario: its site can never
            // reach guaranteed detection.
            if early_exit && all != full {
                for (l, lane) in chunk.iter().enumerate() {
                    if all & (1 << l) == 0 {
                        detected[lane.site_index] = false;
                    }
                }
                return detected;
            }
        }
        for (l, lane) in chunk.iter().enumerate() {
            if all & (1 << l) == 0 {
                detected[lane.site_index] = false;
            }
        }
    }
    detected
}

/// Per-resolution, per-lane mismatch verdicts for every scenario lane of
/// `model` on an `n`-cell memory: `out[r][l]` is `true` when lane `l`
/// (in the crate-internal `lanes_for` enumeration order) produced at
/// least one mismatching read under resolution vector `r`.
///
/// This is the finest observable the packed engines have — the
/// differential suite compares it bit-for-bit across the scalar, 64-lane
/// and wide backends, so a disagreement on a *single* scenario lane
/// fails the build even when the aggregated site verdicts happen to
/// coincide.
#[must_use]
pub fn lane_mismatches(test: &MarchTest, model: FaultModel, n: usize) -> Vec<Vec<bool>> {
    let sites = FaultSite::enumerate(model, n);
    let lanes = lanes_for(&sites, n);
    let resolutions = resolution_vectors(test);
    let mut out = vec![vec![false; lanes.len()]; resolutions.len()];
    let mut base = 0usize;
    for chunk in lanes.chunks(64) {
        let mut batch = LaneBatch::new(model, n, chunk);
        for (ri, resolution) in resolutions.iter().enumerate() {
            let mismatch = batch.run(test, resolution);
            for l in 0..chunk.len() {
                out[ri][base + l] = mismatch & (1u64 << l) != 0;
            }
        }
        base += chunk.len();
    }
    out
}

/// Bit-parallel equivalent of [`crate::coverage::model_coverage`]:
/// sweeps every instance of `model` in an `n`-cell memory, 64 scenario
/// lanes at a time.
#[must_use]
pub fn model_coverage(test: &MarchTest, model: FaultModel, n: usize) -> ModelCoverage {
    let sites = FaultSite::enumerate(model, n);
    let detected = sweep(test, model, n, &sites, false);
    let escapes: Vec<FaultSite> = sites
        .iter()
        .zip(&detected)
        .filter(|&(_, &ok)| !ok)
        .map(|(&site, _)| site)
        .collect();
    ModelCoverage {
        model,
        total_sites: sites.len(),
        detected_sites: sites.len() - escapes.len(),
        escapes,
    }
}

/// Bit-parallel equivalent of [`crate::coverage::coverage_report`].
#[must_use]
pub fn coverage_report(test: &MarchTest, models: &[FaultModel], n: usize) -> CoverageReport {
    CoverageReport {
        models: models.iter().map(|&m| model_coverage(test, m, n)).collect(),
        memory_size: n,
    }
}

/// Bit-parallel equivalent of [`crate::coverage::covers_all`], with
/// early exit on the first escaped scenario — the fast path for
/// compaction, where most deletion candidates lose coverage quickly.
#[must_use]
pub fn covers_all(test: &MarchTest, models: &[FaultModel], n: usize) -> bool {
    covers_all_sites(test, &enumerate_sites(models, n), n)
}

/// Per-model site lists enumerated once, for repeated coverage queries
/// over varying tests (the compaction deletion loop) — the same hoist
/// the scalar path applies in [`crate::redundancy`].
#[must_use]
pub fn enumerate_sites(models: &[FaultModel], n: usize) -> Vec<(FaultModel, Vec<FaultSite>)> {
    models
        .iter()
        .map(|&m| (m, FaultSite::enumerate(m, n)))
        .collect()
}

/// [`covers_all`] over pre-enumerated site lists (see
/// [`enumerate_sites`]).
#[must_use]
pub fn covers_all_sites(
    test: &MarchTest,
    site_lists: &[(FaultModel, Vec<FaultSite>)],
    n: usize,
) -> bool {
    site_lists
        .iter()
        .all(|(model, sites)| sweep(test, *model, n, sites, true).iter().all(|&ok| ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn splat_is_lane_uniform() {
        assert_eq!(splat(Bit::Zero), 0);
        assert_eq!(splat(Bit::One), u64::MAX);
    }

    #[test]
    fn lane_enumeration_matches_scalar_scenario_order() {
        let model = FaultModel::CouplingIdempotent(marchgen_faults::TransitionDir::Up, Bit::One);
        let sites = FaultSite::enumerate(model, 4);
        let lanes = lanes_for(&sites, 4);
        // site-major: lanes of site k all precede lanes of site k+1.
        let mut last = 0usize;
        for lane in &lanes {
            assert!(lane.site_index >= last);
            last = lane.site_index;
        }
        let per_site: usize = power_up_patterns(&sites[0], 4).len();
        assert_eq!(lanes.len(), sites.len() * per_site);
    }

    #[test]
    fn matches_scalar_on_classical_claims() {
        let n = 4;
        for (list, test) in [
            ("SAF, TF", known::mats_plus_plus()),
            ("SAF, TF, ADF, CFin, CFid, CFst", known::march_c_minus()),
            ("SAF, TF, SOF, CFin, DRF", known::march_g()),
            ("RDF, DRDF, IRF", known::march_ss()),
        ] {
            let models = parse_fault_list(list).unwrap();
            let scalar = coverage::coverage_report(&test, &models, n);
            let packed = coverage_report(&test, &models, n);
            assert_eq!(packed, scalar, "{list}");
            assert!(covers_all(&test, &models, n));
        }
    }

    #[test]
    fn matches_scalar_on_gaps_including_escape_lists() {
        let n = 4;
        for (list, test) in [
            ("TF", known::mats()),
            ("CFid", known::march_x()),
            ("SOF", known::march_c_minus()),
            ("DRF", known::march_c_minus()),
        ] {
            let models = parse_fault_list(list).unwrap();
            let scalar = coverage::coverage_report(&test, &models, n);
            let packed = coverage_report(&test, &models, n);
            assert_eq!(packed, scalar, "{list}");
            assert!(!packed.complete());
            assert!(!covers_all(&test, &models, n));
        }
    }

    #[test]
    fn sweeps_larger_than_one_batch() {
        // n = 8 pair faults: 56 sites × 8 patterns = 448 lanes → 7 batches.
        let n = 8;
        let models = parse_fault_list("CFin<u>").unwrap();
        let scalar = coverage::coverage_report(&known::march_c_minus(), &models, n);
        let packed = coverage_report(&known::march_c_minus(), &models, n);
        assert_eq!(packed, scalar);
        assert!(packed.complete());
    }
}
