//! The [`Verifier`] extension trait: the pluggable oracle seam between
//! the generation pipeline and the fault simulator of paper Section 6.
//!
//! The pipeline only ever asks three questions — "does this test cover
//! the fault list?", "can it be compacted?", "is it non-redundant?" —
//! so alternative backends (a parallel simulator, a SAT-based checker,
//! a hardware-in-the-loop harness) can replace the built-in behavioural
//! simulator by implementing this trait.

use crate::coverage::{coverage_report, CoverageReport};
use crate::redundancy;
use marchgen_faults::FaultModel;
use marchgen_march::MarchTest;

/// A verification backend for generated March tests.
///
/// Implementations must be `Send + Sync`: the batch service layer shares
/// one verifier across worker threads.
pub trait Verifier: Send + Sync {
    /// A short stable identifier for reports and diagnostics.
    fn name(&self) -> &str;

    /// Full per-model coverage of `test` over the fault list.
    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport;

    /// A minimal sub-test that still covers the fault list (the paper's
    /// Table 2 minimization role). The default returns the test
    /// unchanged (no compaction capability).
    fn compact(&self, test: &MarchTest, models: &[FaultModel]) -> MarchTest {
        let _ = models;
        test.clone()
    }

    /// `true` when no single operation can be deleted from `test`
    /// without losing coverage. The default is a conservative `false`
    /// (capability not implemented).
    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let _ = (test, models);
        false
    }
}

/// The built-in behavioural fault simulator (paper §6) on an `n`-cell
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimVerifier {
    /// Memory size the sweeps run on. Four cells suffice for the
    /// classical two-cell fault models; larger memories cost
    /// quadratically more on coupling faults.
    pub cells: usize,
}

impl SimVerifier {
    /// A simulator-backed verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> SimVerifier {
        SimVerifier { cells }
    }
}

impl Default for SimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> SimVerifier {
        SimVerifier { cells: 4 }
    }
}

impl Verifier for SimVerifier {
    fn name(&self) -> &str {
        "simulator"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        coverage_report(test, models, self.cells)
    }

    fn compact(&self, test: &MarchTest, models: &[FaultModel]) -> MarchTest {
        redundancy::compact(test, models, self.cells)
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        redundancy::is_non_redundant(test, models, self.cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn sim_verifier_matches_free_functions() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let test = known::march_c_minus();
        let verifier = SimVerifier::new(4);
        let direct = coverage_report(&test, &models, 4);
        assert_eq!(verifier.verify(&test, &models), direct);
        assert!(verifier.is_non_redundant(&verifier.compact(&test, &models), &models));
    }

    #[test]
    fn trait_object_usable() {
        let verifier: Box<dyn Verifier> = Box::new(SimVerifier::default());
        let models = parse_fault_list("SAF").unwrap();
        let report = verifier.verify(&known::mats(), &models);
        assert!(report.complete());
        assert_eq!(verifier.name(), "simulator");
    }

    #[test]
    fn default_capabilities_are_conservative() {
        struct CoverageOnly;
        impl Verifier for CoverageOnly {
            fn name(&self) -> &str {
                "coverage-only"
            }
            fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
                coverage_report(test, models, 3)
            }
        }
        let v = CoverageOnly;
        let models = parse_fault_list("SAF").unwrap();
        let test = known::mats();
        assert_eq!(v.compact(&test, &models), test);
        assert!(!v.is_non_redundant(&test, &models));
    }
}
