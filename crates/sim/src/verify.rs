//! The [`Verifier`] extension trait: the pluggable oracle seam between
//! the generation pipeline and the fault simulator of paper Section 6.
//!
//! The pipeline only ever asks three questions — "does this test cover
//! the fault list?", "can it be compacted?", "is it non-redundant?" —
//! so alternative backends (a parallel simulator, a SAT-based checker,
//! a hardware-in-the-loop harness) can replace the built-in behavioural
//! simulator by implementing this trait. Two backends ship in-tree:
//!
//! * [`SimVerifier`] — the scalar behavioural simulator (one scenario at
//!   a time), and
//! * [`BitSimVerifier`] — the bit-parallel sweep of [`crate::bitsim`]
//!   (64 scenario lanes per `u64` word), exact-agreement verified
//!   against the scalar backend and roughly an order of magnitude
//!   faster on coupling-fault lists.

use crate::coverage::{coverage_report, CoverageReport};
use crate::{bitsim, redundancy};
use marchgen_faults::FaultModel;
use marchgen_march::MarchTest;
use std::borrow::Cow;

/// A verification backend for generated March tests.
///
/// Implementations must be `Send + Sync`: the batch service layer shares
/// one verifier across worker threads.
pub trait Verifier: Send + Sync {
    /// A short stable identifier for reports and diagnostics.
    fn name(&self) -> &str;

    /// Full per-model coverage of `test` over the fault list.
    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport;

    /// A minimal sub-test that still covers the fault list (the paper's
    /// Table 2 minimization role). The default returns the test borrowed
    /// and unchanged (no compaction capability) — implementations should
    /// likewise return [`Cow::Borrowed`] when nothing was deleted, so
    /// the already-minimal common case never clones the test.
    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        let _ = models;
        Cow::Borrowed(test)
    }

    /// `true` when no single operation can be deleted from `test`
    /// without losing coverage. The default is a conservative `false`
    /// (capability not implemented).
    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let _ = (test, models);
        false
    }
}

/// The built-in scalar behavioural fault simulator (paper §6) on an
/// `n`-cell memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimVerifier {
    /// Memory size the sweeps run on. Four cells suffice for the
    /// classical two-cell fault models; larger memories cost
    /// quadratically more on coupling faults.
    pub cells: usize,
}

impl SimVerifier {
    /// A simulator-backed verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> SimVerifier {
        SimVerifier { cells }
    }
}

impl Default for SimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> SimVerifier {
        SimVerifier { cells: 4 }
    }
}

impl Verifier for SimVerifier {
    fn name(&self) -> &str {
        "simulator"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        coverage_report(test, models, self.cells)
    }

    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        redundancy::compact(test, models, self.cells)
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        redundancy::is_non_redundant(test, models, self.cells)
    }
}

/// The bit-parallel fault simulator of [`crate::bitsim`]: up to 64
/// scenario lanes per `u64` memory word, one March execution advancing
/// all of them at once.
///
/// Produces bit-identical [`CoverageReport`]s, compactions and
/// non-redundancy verdicts to [`SimVerifier`] (enforced by the
/// differential test suite) at a fraction of the cost on pair-fault
/// lists, where the scenario count grows as `n·(n−1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSimVerifier {
    /// Memory size the sweeps run on.
    pub cells: usize,
}

impl BitSimVerifier {
    /// A bit-parallel verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> BitSimVerifier {
        BitSimVerifier { cells }
    }
}

impl Default for BitSimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> BitSimVerifier {
        BitSimVerifier { cells: 4 }
    }
}

impl Verifier for BitSimVerifier {
    fn name(&self) -> &str {
        "bitsim"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        bitsim::coverage_report(test, models, self.cells)
    }

    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::compact_with(test, &|cand| {
            bitsim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::is_non_redundant_with(test, &|cand| {
            bitsim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn sim_verifier_matches_free_functions() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let test = known::march_c_minus();
        let verifier = SimVerifier::new(4);
        let direct = coverage_report(&test, &models, 4);
        assert_eq!(verifier.verify(&test, &models), direct);
        assert!(verifier.is_non_redundant(&verifier.compact(&test, &models), &models));
    }

    #[test]
    fn bitsim_verifier_matches_scalar_backend() {
        let models = parse_fault_list("SAF, TF, CFin, CFid").unwrap();
        let test = known::march_c_minus();
        let scalar = SimVerifier::new(4);
        let packed = BitSimVerifier::new(4);
        assert_eq!(packed.verify(&test, &models), scalar.verify(&test, &models));
        assert_eq!(
            *packed.compact(&test, &models),
            *scalar.compact(&test, &models)
        );
        assert_eq!(
            packed.is_non_redundant(&test, &models),
            scalar.is_non_redundant(&test, &models)
        );
        assert_eq!(packed.name(), "bitsim");
    }

    #[test]
    fn trait_object_usable() {
        let verifier: Box<dyn Verifier> = Box::new(SimVerifier::default());
        let models = parse_fault_list("SAF").unwrap();
        let report = verifier.verify(&known::mats(), &models);
        assert!(report.complete());
        assert_eq!(verifier.name(), "simulator");
    }

    #[test]
    fn default_capabilities_are_conservative() {
        struct CoverageOnly;
        impl Verifier for CoverageOnly {
            fn name(&self) -> &str {
                "coverage-only"
            }
            fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
                coverage_report(test, models, 3)
            }
        }
        let v = CoverageOnly;
        let models = parse_fault_list("SAF").unwrap();
        let test = known::mats();
        let compacted = v.compact(&test, &models);
        assert!(matches!(compacted, Cow::Borrowed(_)));
        assert_eq!(*compacted, test);
        assert!(!v.is_non_redundant(&test, &models));
    }
}
