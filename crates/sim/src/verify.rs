//! The [`Verifier`] extension trait: the pluggable oracle seam between
//! the generation pipeline and the fault simulator of paper Section 6.
//!
//! The pipeline only ever asks three questions — "does this test cover
//! the fault list?", "can it be compacted?", "is it non-redundant?" —
//! so alternative backends (a parallel simulator, a SAT-based checker,
//! a hardware-in-the-loop harness) can replace the built-in behavioural
//! simulator by implementing this trait. Two backends ship in-tree:
//!
//! * [`SimVerifier`] — the scalar behavioural simulator (one scenario at
//!   a time),
//! * [`BitSimVerifier`] — the bit-parallel sweep of [`crate::bitsim`]
//!   (64 scenario lanes per `u64` word), exact-agreement verified
//!   against the scalar backend and roughly an order of magnitude
//!   faster on coupling-fault lists, and
//! * [`WideSimVerifier`] — the wide-lane sweep of [`crate::widesim`]
//!   (`[u64; W]` lane blocks, 128–512 lanes per word), which also
//!   implements real sharded verification: [`Verifier::verify_sharded`]
//!   fans the deterministic [`crate::widesim::shard_plan`] across scoped
//!   worker threads and reports per-shard timings.

use crate::coverage::{coverage_report, CoverageReport};
use crate::engine::FaultSite;
use crate::{bitsim, redundancy, widesim};
use marchgen_faults::FaultModel;
use marchgen_march::MarchTest;
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The result of a (possibly sharded) verification sweep: the coverage
/// report plus per-shard wall-clock timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyRun {
    /// Full per-model coverage, identical to what [`Verifier::verify`]
    /// returns for the same inputs — sharding never changes verdicts.
    pub report: CoverageReport,
    /// Wall-clock microseconds per verification shard, in shard-plan
    /// order. Backends without real sharding report a single entry
    /// covering the whole sweep. Shards run concurrently, so the sum can
    /// exceed the phase's wall-clock time.
    pub shard_micros: Vec<u64>,
}

/// A verification backend for generated March tests.
///
/// Implementations must be `Send + Sync`: the batch service layer shares
/// one verifier across worker threads.
pub trait Verifier: Send + Sync {
    /// A short stable identifier for reports and diagnostics.
    fn name(&self) -> &str;

    /// Full per-model coverage of `test` over the fault list.
    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport;

    /// A minimal sub-test that still covers the fault list (the paper's
    /// Table 2 minimization role). The default returns the test borrowed
    /// and unchanged (no compaction capability) — implementations should
    /// likewise return [`Cow::Borrowed`] when nothing was deleted, so
    /// the already-minimal common case never clones the test.
    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        let _ = models;
        Cow::Borrowed(test)
    }

    /// `true` when no single operation can be deleted from `test`
    /// without losing coverage. The default is a conservative `false`
    /// (capability not implemented).
    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let _ = (test, models);
        false
    }

    /// [`Verifier::verify`] with the sweep partitioned across up to
    /// `workers` threads, reporting per-shard timings. The report must
    /// be identical to the unsharded [`Verifier::verify`] at any worker
    /// count, and the shard *count* must depend only on the inputs
    /// (never on `workers`) so diagnostics stay deterministic. The
    /// default runs the whole sweep as one timed shard — backends
    /// without internal parallelism need nothing more.
    fn verify_sharded(&self, test: &MarchTest, models: &[FaultModel], workers: usize) -> VerifyRun {
        let _ = workers;
        let start = Instant::now();
        let report = self.verify(test, models);
        VerifyRun {
            report,
            shard_micros: vec![elapsed_micros(start)],
        }
    }
}

/// Saturating whole-microsecond reading of a started clock.
fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The built-in scalar behavioural fault simulator (paper §6) on an
/// `n`-cell memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimVerifier {
    /// Memory size the sweeps run on. Four cells suffice for the
    /// classical two-cell fault models; larger memories cost
    /// quadratically more on coupling faults.
    pub cells: usize,
}

impl SimVerifier {
    /// A simulator-backed verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> SimVerifier {
        SimVerifier { cells }
    }
}

impl Default for SimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> SimVerifier {
        SimVerifier { cells: 4 }
    }
}

impl Verifier for SimVerifier {
    fn name(&self) -> &str {
        "simulator"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        coverage_report(test, models, self.cells)
    }

    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        redundancy::compact(test, models, self.cells)
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        redundancy::is_non_redundant(test, models, self.cells)
    }
}

/// The bit-parallel fault simulator of [`crate::bitsim`]: up to 64
/// scenario lanes per `u64` memory word, one March execution advancing
/// all of them at once.
///
/// Produces bit-identical [`CoverageReport`]s, compactions and
/// non-redundancy verdicts to [`SimVerifier`] (enforced by the
/// differential test suite) at a fraction of the cost on pair-fault
/// lists, where the scenario count grows as `n·(n−1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSimVerifier {
    /// Memory size the sweeps run on.
    pub cells: usize,
}

impl BitSimVerifier {
    /// A bit-parallel verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> BitSimVerifier {
        BitSimVerifier { cells }
    }
}

impl Default for BitSimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> BitSimVerifier {
        BitSimVerifier { cells: 4 }
    }
}

impl Verifier for BitSimVerifier {
    fn name(&self) -> &str {
        "bitsim"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        bitsim::coverage_report(test, models, self.cells)
    }

    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::compact_with(test, &|cand| {
            bitsim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::is_non_redundant_with(test, &|cand| {
            bitsim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }
}

/// The wide-lane fault simulator of [`crate::widesim`]: `[u64; W]` lane
/// blocks (W ∈ {2, 4, 8} picked by scenario count) carrying 128–512
/// scenario lanes per memory word.
///
/// Produces bit-identical [`CoverageReport`]s, compactions and
/// non-redundancy verdicts to [`SimVerifier`] and [`BitSimVerifier`]
/// (enforced by the three-way differential suite). Unlike the other
/// backends it implements *real* sharded verification:
/// [`Verifier::verify_sharded`] fans the deterministic
/// [`widesim::shard_plan`] across scoped worker threads, merging shard
/// verdicts in plan order so the report is byte-identical at any worker
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideSimVerifier {
    /// Memory size the sweeps run on.
    pub cells: usize,
}

impl WideSimVerifier {
    /// A wide-lane verifier on `cells` memory cells.
    #[must_use]
    pub fn new(cells: usize) -> WideSimVerifier {
        WideSimVerifier { cells }
    }
}

impl Default for WideSimVerifier {
    /// The pipeline's default: a 4-cell memory.
    fn default() -> WideSimVerifier {
        WideSimVerifier { cells: 4 }
    }
}

impl Verifier for WideSimVerifier {
    fn name(&self) -> &str {
        "widesim"
    }

    fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
        widesim::coverage_report(test, models, self.cells)
    }

    fn compact<'a>(&self, test: &'a MarchTest, models: &[FaultModel]) -> Cow<'a, MarchTest> {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::compact_with(test, &|cand| {
            widesim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }

    fn is_non_redundant(&self, test: &MarchTest, models: &[FaultModel]) -> bool {
        let site_lists = bitsim::enumerate_sites(models, self.cells);
        redundancy::is_non_redundant_with(test, &|cand| {
            widesim::covers_all_sites(cand, &site_lists, self.cells)
        })
    }

    fn verify_sharded(&self, test: &MarchTest, models: &[FaultModel], workers: usize) -> VerifyRun {
        let n = self.cells;
        let site_lists: Vec<Vec<FaultSite>> =
            models.iter().map(|&m| FaultSite::enumerate(m, n)).collect();
        let plan = widesim::shard_plan(models, n);
        let results = run_indexed(plan.len(), workers, |k| {
            let shard = &plan[k];
            let start = Instant::now();
            let verdicts = widesim::site_verdicts(
                test,
                models[shard.model_index],
                n,
                &site_lists[shard.model_index][shard.sites.clone()],
            );
            (verdicts, elapsed_micros(start))
        });
        // Shards of one model are contiguous ascending site ranges, so
        // concatenating their verdicts in plan order reproduces the
        // unsharded enumeration exactly.
        let mut per_model: Vec<Vec<bool>> = vec![Vec::new(); models.len()];
        let mut shard_micros = Vec::with_capacity(plan.len());
        for (shard, (verdicts, micros)) in plan.iter().zip(results) {
            per_model[shard.model_index].extend(verdicts);
            shard_micros.push(micros);
        }
        let report = CoverageReport {
            models: models
                .iter()
                .enumerate()
                .map(|(i, &m)| widesim::coverage_from_verdicts(m, &site_lists[i], &per_model[i]))
                .collect(),
            memory_size: n,
        };
        VerifyRun {
            report,
            shard_micros,
        }
    }
}

/// Runs `f(0..jobs)` across up to `workers` scoped threads pulling from
/// a shared queue, collecting results **by index** — the same machinery
/// the generator uses for its search shards, so the merged output is
/// identical to the inline `workers <= 1` path regardless of
/// scheduling.
fn run_indexed<T: Send>(jobs: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(jobs, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= jobs {
                    break;
                }
                let out = f(k);
                slots.lock().expect("verify shard slots lock")[k] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("verify shard slots lock")
        .into_iter()
        .map(|slot| slot.expect("every verify shard ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn sim_verifier_matches_free_functions() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let test = known::march_c_minus();
        let verifier = SimVerifier::new(4);
        let direct = coverage_report(&test, &models, 4);
        assert_eq!(verifier.verify(&test, &models), direct);
        assert!(verifier.is_non_redundant(&verifier.compact(&test, &models), &models));
    }

    #[test]
    fn bitsim_verifier_matches_scalar_backend() {
        let models = parse_fault_list("SAF, TF, CFin, CFid").unwrap();
        let test = known::march_c_minus();
        let scalar = SimVerifier::new(4);
        let packed = BitSimVerifier::new(4);
        assert_eq!(packed.verify(&test, &models), scalar.verify(&test, &models));
        assert_eq!(
            *packed.compact(&test, &models),
            *scalar.compact(&test, &models)
        );
        assert_eq!(
            packed.is_non_redundant(&test, &models),
            scalar.is_non_redundant(&test, &models)
        );
        assert_eq!(packed.name(), "bitsim");
    }

    #[test]
    fn trait_object_usable() {
        let verifier: Box<dyn Verifier> = Box::new(SimVerifier::default());
        let models = parse_fault_list("SAF").unwrap();
        let report = verifier.verify(&known::mats(), &models);
        assert!(report.complete());
        assert_eq!(verifier.name(), "simulator");
    }

    #[test]
    fn widesim_verifier_matches_scalar_backend() {
        let models = parse_fault_list("SAF, TF, CFin, CFid, CFst").unwrap();
        let test = known::march_c_minus();
        let scalar = SimVerifier::new(4);
        let wide = WideSimVerifier::new(4);
        assert_eq!(wide.verify(&test, &models), scalar.verify(&test, &models));
        assert_eq!(
            *wide.compact(&test, &models),
            *scalar.compact(&test, &models)
        );
        assert_eq!(
            wide.is_non_redundant(&test, &models),
            scalar.is_non_redundant(&test, &models)
        );
        assert_eq!(wide.name(), "widesim");
    }

    #[test]
    fn default_verify_sharded_is_one_timed_shard() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let test = known::march_c_minus();
        for verifier in [
            Box::new(SimVerifier::new(4)) as Box<dyn Verifier>,
            Box::new(BitSimVerifier::new(4)),
        ] {
            let run = verifier.verify_sharded(&test, &models, 4);
            assert_eq!(run.report, verifier.verify(&test, &models));
            assert_eq!(run.shard_micros.len(), 1);
        }
    }

    #[test]
    fn sharded_wide_verify_is_worker_invariant() {
        let wide = WideSimVerifier::new(6);
        for list in ["SAF, TF, ADF", "CFin, CFid, CFst", "dRDF, LCF", "SOF, DRF"] {
            let models = parse_fault_list(list).unwrap();
            for test in [known::march_c_minus(), known::mats(), known::march_g()] {
                let unsharded = wide.verify(&test, &models);
                let plan_len = crate::widesim::shard_plan(&models, 6).len();
                let mut runs = Vec::new();
                for workers in [1usize, 2, 8] {
                    let run = wide.verify_sharded(&test, &models, workers);
                    assert_eq!(run.report, unsharded, "{list} at {workers} workers");
                    assert_eq!(run.shard_micros.len(), plan_len, "{list}: shard count");
                    runs.push(run.report);
                }
                assert!(runs.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn default_capabilities_are_conservative() {
        struct CoverageOnly;
        impl Verifier for CoverageOnly {
            fn name(&self) -> &str {
                "coverage-only"
            }
            fn verify(&self, test: &MarchTest, models: &[FaultModel]) -> CoverageReport {
                coverage_report(test, models, 3)
            }
        }
        let v = CoverageOnly;
        let models = parse_fault_list("SAF").unwrap();
        let test = known::mats();
        let compacted = v.compact(&test, &models);
        assert!(matches!(compacted, Cow::Borrowed(_)));
        assert_eq!(*compacted, test);
        assert!(!v.is_non_redundant(&test, &models));
    }
}
