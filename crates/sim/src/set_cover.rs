//! Exact set covering — the paper's non-redundancy instrument
//! (Section 6): *"The Set Covering finds the minimum number of CM rows
//! needed to cover all the CM columns. If this number corresponds with
//! the total number of rows, then the March Test can be considered
//! non-redundant."*

/// A set-covering instance: `sets[r]` lists the universe elements row `r`
/// covers; the universe is `0..universe`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCover {
    /// Universe size.
    pub universe: usize,
    /// Element lists per set.
    pub sets: Vec<Vec<usize>>,
}

impl SetCover {
    /// Creates an instance (elements out of range are ignored).
    #[must_use]
    pub fn new(universe: usize, sets: Vec<Vec<usize>>) -> SetCover {
        SetCover { universe, sets }
    }

    fn masks(&self) -> Option<Vec<u128>> {
        if self.universe > 128 {
            return None;
        }
        Some(
            self.sets
                .iter()
                .map(|s| {
                    s.iter()
                        .filter(|&&e| e < self.universe)
                        .fold(0u128, |m, &e| m | (1u128 << e))
                })
                .collect(),
        )
    }

    /// `true` when the union of all sets covers the universe.
    #[must_use]
    pub fn is_coverable(&self) -> bool {
        match self.masks() {
            Some(masks) => {
                let full = full_mask(self.universe);
                masks.iter().fold(0u128, |a, &m| a | m) == full
            }
            None => {
                let mut seen = vec![false; self.universe];
                for s in &self.sets {
                    for &e in s {
                        if e < self.universe {
                            seen[e] = true;
                        }
                    }
                }
                seen.iter().all(|&b| b)
            }
        }
    }

    /// Greedy cover (logarithmic approximation); `None` if uncoverable.
    #[must_use]
    pub fn greedy(&self) -> Option<Vec<usize>> {
        let masks = self.masks()?;
        let full = full_mask(self.universe);
        let mut covered = 0u128;
        let mut chosen = Vec::new();
        while covered != full {
            let (best, gain) = masks
                .iter()
                .enumerate()
                .map(|(k, &m)| (k, (m & !covered).count_ones()))
                .max_by_key(|&(_, g)| g)?;
            if gain == 0 {
                return None;
            }
            chosen.push(best);
            covered |= masks[best];
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Exact minimum cover by branch-and-bound (universe ≤ 128), seeded
    /// with the greedy bound. `None` if uncoverable.
    #[must_use]
    pub fn minimum(&self) -> Option<Vec<usize>> {
        let masks = self.masks()?;
        let full = full_mask(self.universe);
        if self.universe == 0 {
            return Some(Vec::new());
        }
        if !self.is_coverable() {
            return None;
        }
        let mut best: Vec<usize> = self.greedy()?;
        // Branch on the uncovered element with the fewest candidate sets.
        let mut element_sets: Vec<Vec<usize>> = vec![Vec::new(); self.universe];
        for (k, &m) in masks.iter().enumerate() {
            for (e, sets) in element_sets.iter_mut().enumerate() {
                if m & (1 << e) != 0 {
                    sets.push(k);
                }
            }
        }
        let mut chosen: Vec<usize> = Vec::new();
        fn recurse(
            covered: u128,
            full: u128,
            masks: &[u128],
            element_sets: &[Vec<usize>],
            chosen: &mut Vec<usize>,
            best: &mut Vec<usize>,
        ) {
            if covered == full {
                if chosen.len() < best.len() {
                    *best = chosen.clone();
                }
                return;
            }
            // Lower bound: at least ceil(missing / max-gain) more sets.
            let missing = (full & !covered).count_ones();
            let best_gain = masks
                .iter()
                .map(|&m| (m & !covered).count_ones())
                .max()
                .unwrap_or(0);
            if best_gain == 0 {
                return;
            }
            if chosen.len() + missing.div_ceil(best_gain) as usize >= best.len() {
                return;
            }
            let pivot = (0..element_sets.len())
                .filter(|&e| full & (1 << e) != 0 && covered & (1 << e) == 0)
                .min_by_key(|&e| element_sets[e].len())
                .expect("uncovered element exists");
            for &k in &element_sets[pivot] {
                chosen.push(k);
                recurse(covered | masks[k], full, masks, element_sets, chosen, best);
                chosen.pop();
            }
        }
        recurse(0, full, &masks, &element_sets, &mut chosen, &mut best);
        best.sort_unstable();
        Some(best)
    }
}

fn full_mask(universe: usize) -> u128 {
    if universe == 0 {
        0
    } else if universe == 128 {
        u128::MAX
    } else {
        (1u128 << universe) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_instances() {
        let sc = SetCover::new(0, vec![]);
        assert_eq!(sc.minimum(), Some(vec![]));
        let sc = SetCover::new(2, vec![vec![0, 1]]);
        assert_eq!(sc.minimum(), Some(vec![0]));
    }

    #[test]
    fn uncoverable_returns_none() {
        let sc = SetCover::new(3, vec![vec![0], vec![1]]);
        assert!(!sc.is_coverable());
        assert_eq!(sc.minimum(), None);
        assert_eq!(sc.greedy(), None);
    }

    #[test]
    fn minimum_beats_greedy_on_classic_trap() {
        // Greedy grabs the 4-element bait and then needs two repairs;
        // the optimum covers everything with two sets.
        let sc = SetCover::new(
            6,
            vec![
                vec![0, 1, 2, 3], // greedy bait
                vec![0, 1, 4],
                vec![2, 3, 5],
                vec![0, 4],
            ],
        );
        let greedy = sc.greedy().unwrap();
        assert_eq!(greedy.len(), 3, "greedy falls for the bait: {greedy:?}");
        let min = sc.minimum().unwrap();
        assert_eq!(min.len(), 2);
        assert_eq!(min, vec![1, 2]);
    }

    #[test]
    fn minimum_covers_everything() {
        let sc = SetCover::new(
            8,
            vec![
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
                vec![6],
                vec![7, 0],
                vec![1, 2, 6],
                vec![3, 4, 5, 7],
            ],
        );
        let min = sc.minimum().unwrap();
        let mut covered = [false; 8];
        for &k in &min {
            for &e in &sc.sets[k] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn all_rows_needed_case() {
        // Disjoint singletons: the minimum cover is every set — the
        // "non-redundant" verdict shape of the paper.
        let sc = SetCover::new(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(sc.minimum().unwrap().len(), sc.sets.len());
    }
}
