//! Property tests (deterministic `marchgen-testkit` harness) for the
//! canonical cache key: permutation- and duplication-invariance over
//! the fault list, default-field omission in JSON documents, and
//! sensitivity to every semantic field.

use marchgen_cache::{canonical_key_text, request_key};
use marchgen_faults::FaultModel;
use marchgen_generator::{GenerateRequest, VerifierChoice};
use marchgen_json::FromJson;
use marchgen_testkit::{run_cases, Rng};
use marchgen_tpg::StartPolicy;

fn random_faults(rng: &mut Rng) -> Vec<FaultModel> {
    let all = FaultModel::all_classical();
    rng.vec(1, 8, |rng| *rng.pick(&all))
}

fn shuffled<T: Clone>(rng: &mut Rng, items: &[T]) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        out.swap(i, rng.range(0, i + 1));
    }
    out
}

/// Permuting (and duplicating) the fault list never changes the key.
#[test]
fn permutation_and_duplication_invariance() {
    run_cases("cache_key_permutation_invariance", 128, |rng| {
        let faults = random_faults(rng);
        let base = GenerateRequest::new(faults.clone());
        let permuted = GenerateRequest::new(shuffled(rng, &faults));
        assert_eq!(
            request_key(&base),
            request_key(&permuted),
            "{} vs {}",
            canonical_key_text(&base),
            canonical_key_text(&permuted)
        );

        // Duplicating a random entry is also identity-preserving.
        let mut duplicated = faults.clone();
        duplicated.push(*rng.pick(&faults));
        assert_eq!(
            request_key(&base),
            request_key(&GenerateRequest::new(shuffled(rng, &duplicated)))
        );
    });
}

/// A JSON document that spells out the defaults keys identically to
/// one that omits them (the `Default`-consistency regression, driven
/// through random fault lists).
#[test]
fn default_field_omission_matches_explicit_defaults() {
    run_cases("cache_key_default_omission", 64, |rng| {
        let faults = random_faults(rng);
        let names: Vec<String> = faults.iter().map(|m| format!("{:?}", m.name())).collect();
        let list = names.join(", ");
        let terse = GenerateRequest::from_json_str(&format!("{{\"faults\": [{list}]}}"))
            .expect("terse document decodes");
        let spelled = GenerateRequest::from_json_str(&format!(
            "{{\"faults\": [{list}], \"verifier\": \"auto\", \"search_threads\": 0, \
              \"solver\": \"auto\", \"start_policy\": \"uniform\", \"tour_cap\": 64, \
              \"verify_cells\": 4, \"compact\": true, \"check_redundancy\": false, \
              \"max_combinations\": 4096}}"
        ))
        .expect("spelled-out document decodes");
        assert_eq!(terse, spelled);
        assert_eq!(request_key(&terse), request_key(&spelled));
    });
}

/// Every semantic field change moves the key; execution-knob changes
/// (verifier backend, search threads) never do.
#[test]
fn semantic_fields_move_the_key_execution_knobs_do_not() {
    run_cases("cache_key_semantic_sensitivity", 128, |rng| {
        let base = GenerateRequest::new(random_faults(rng));
        let key = request_key(&base);

        let semantic: Vec<GenerateRequest> = vec![
            {
                // Adding a model not already present changes the set.
                let all = FaultModel::all_classical();
                let extra = *rng.pick(&all);
                let mut faults = base.faults.clone();
                if faults.contains(&extra) {
                    GenerateRequest::new(Vec::new()) // sentinel, differs too
                } else {
                    faults.push(extra);
                    GenerateRequest::new(faults)
                }
            },
            base.clone().with_start_policy(StartPolicy::Free),
            base.clone().with_tour_cap(base.tour_cap + rng.range(1, 50)),
            base.clone()
                .with_verify_cells(base.verify_cells + rng.range(1, 4)),
            base.clone().with_compact(!base.compact),
            base.clone().with_check_redundancy(!base.check_redundancy),
            base.clone()
                .with_max_combinations(base.max_combinations + rng.range(1, 50)),
        ];
        for variant in &semantic {
            assert_ne!(
                request_key(variant),
                key,
                "semantic change must move the key: {}",
                canonical_key_text(variant)
            );
        }

        let execution: Vec<GenerateRequest> = vec![
            base.clone().with_verifier(VerifierChoice::Scalar),
            base.clone().with_verifier(VerifierChoice::BitParallel),
            base.clone().with_search_threads(rng.range(1, 16)),
        ];
        for variant in &execution {
            assert_eq!(
                request_key(variant),
                key,
                "execution knobs are outcome-invariant and must share the key"
            );
        }
    });
}

/// The key text itself is canonical: normalizing twice changes nothing,
/// and the key survives a JSON round-trip of the request.
#[test]
fn key_is_stable_under_roundtrip_and_renormalization() {
    use marchgen_json::ToJson;
    run_cases("cache_key_roundtrip_stability", 64, |rng| {
        let request = GenerateRequest::new(random_faults(rng));
        let normalized = request.clone().normalize();
        assert_eq!(request_key(&request), request_key(&normalized));
        assert_eq!(normalized.clone().normalize(), normalized);

        let back = GenerateRequest::from_json_str(&request.to_json_string()).unwrap();
        assert_eq!(request_key(&back), request_key(&request));
    });
}
