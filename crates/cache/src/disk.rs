//! The persistent half of the outcome cache: one JSON file per key.
//!
//! Layout: `<dir>/<32-hex-key>.json`, each file an envelope
//! `{"canonical_request": <canonical key text>, "outcome": <GenerateOutcome>}`
//! — the outcome in JSON schema v1 (exactly the daemon/CLI wire format,
//! so entries stay greppable and portable), plus the canonical request
//! text the key was hashed from. The text is what makes hits safe: the
//! 128-bit FNV key is non-cryptographic, so a loader verifies the
//! stored text against the request it is serving before trusting the
//! entry (see [`OutcomeCache`](crate::OutcomeCache)). Writes go through
//! a process-unique temp file in the same directory followed by a
//! rename, which is atomic on POSIX: readers (including concurrent
//! daemons sharing the directory) never observe a torn entry. Corrupt,
//! unreadable or pre-envelope files behave as misses.

use crate::key::CacheKey;
use marchgen_generator::GenerateOutcome;
use marchgen_json::{FromJson, Json, ToJson};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One decoded disk entry: the outcome plus the canonical request text
/// it was stored under. Callers must compare `canonical` against the
/// request they are serving before using `outcome`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// The canonical key text ([`crate::canonical_key_text`]) of the
    /// request that produced this outcome.
    pub canonical: String,
    /// The cached outcome.
    pub outcome: GenerateOutcome,
}

/// A directory of cached outcomes keyed by [`CacheKey`].
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore { dir })
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the entry stored under `key`; `None` when absent or
    /// undecodable (a corrupt entry is a miss, never an error).
    /// Pre-envelope files — bare outcomes without a canonical text —
    /// also read as misses: without the text the entry cannot be
    /// verified against the request being served.
    #[must_use]
    pub fn load(&self, key: CacheKey) -> Option<StoredEntry> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        let canonical = doc.get("canonical_request")?.as_str()?.to_owned();
        let outcome = GenerateOutcome::from_json(doc.get("outcome")?).ok()?;
        Some(StoredEntry { canonical, outcome })
    }

    /// Persists `outcome` under `key` atomically (temp file + rename),
    /// alongside the canonical request text a future hit verifies.
    /// Storage failures are swallowed: the cache is an accelerator, and
    /// a full disk must not fail the request that computed the outcome.
    pub fn store(&self, key: CacheKey, canonical: &str, outcome: &GenerateOutcome) {
        let envelope = Json::object([
            ("canonical_request", Json::from(canonical)),
            ("outcome", outcome.to_json()),
        ]);
        let final_path = self.path_for(key);
        let temp_path = self.dir.join(format!(
            ".{key}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::write(&temp_path, envelope.render_pretty())
            .and_then(|()| std::fs::rename(&temp_path, &final_path));
        if written.is_err() {
            let _ = std::fs::remove_file(&temp_path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_generator::{generate, GenerateRequest};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("marchgen-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        let outcome = generate(&GenerateRequest::from_fault_list("SAF").unwrap()).unwrap();
        let key = CacheKey(42);
        assert!(store.load(key).is_none());
        store.store(key, "canonical-text", &outcome);
        let entry = store.load(key).expect("stored entry loads");
        assert_eq!(entry.canonical, "canonical-text");
        assert_eq!(entry.outcome, outcome);
        // The entry sits at the documented path and no temp litter
        // remains.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec![format!("{key}.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        let key = CacheKey(7);
        std::fs::write(store.dir().join(format!("{key}.json")), "not json").unwrap();
        assert!(store.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Entries written before the canonical-text envelope (a bare
    /// outcome document) cannot be verified and must read as misses.
    #[test]
    fn pre_envelope_entries_read_as_misses() {
        use marchgen_json::ToJson as _;
        let dir = temp_dir("pre-envelope");
        let store = DiskStore::open(&dir).unwrap();
        let outcome = generate(&GenerateRequest::from_fault_list("SAF").unwrap()).unwrap();
        let key = CacheKey(9);
        std::fs::write(
            store.dir().join(format!("{key}.json")),
            outcome.to_json_pretty(),
        )
        .unwrap();
        assert!(store.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
