//! The persistent half of the outcome cache: one JSON file per key.
//!
//! Layout: `<dir>/<32-hex-key>.json`, each file an envelope
//! `{"canonical_request": <canonical key text>, "outcome": <GenerateOutcome>}`
//! — the outcome in JSON schema v1 (exactly the daemon/CLI wire format,
//! so entries stay greppable and portable), plus the canonical request
//! text the key was hashed from. The text is what makes hits safe: the
//! 128-bit FNV key is non-cryptographic, so a loader verifies the
//! stored text against the request it is serving before trusting the
//! entry (see [`OutcomeCache`](crate::OutcomeCache)). Writes go through
//! a process-unique temp file in the same directory followed by a
//! rename, which is atomic on POSIX: readers (including concurrent
//! daemons sharing the directory) never observe a torn entry.
//!
//! # Failure handling
//!
//! The store is an accelerator, never an authority, and its failure
//! modes are explicit rather than silent:
//!
//! - **Corrupt entries are quarantined.** Renames are atomic, so an
//!   undecodable file is genuine corruption (bit rot, truncation by an
//!   external tool, a pre-envelope entry from an old schema). Instead
//!   of re-parsing it as a miss on every request forever, `load` moves
//!   it aside to `<name>.quarantined` once, counts it, and the next
//!   compute overwrites the slot with a good entry.
//! - **Persistent write failures flip the store into degraded
//!   (memory-only) mode.** A full disk or revoked permissions
//!   (ENOSPC/EACCES) would otherwise pay the failing syscalls on every
//!   insert; after the first failure the store skips disk writes and
//!   probes for recovery with exponential backoff (500ms doubling to
//!   60s). A successful probe restores normal service. The flag is
//!   surfaced as `disk_degraded` in
//!   [`CacheStatsSnapshot`](crate::CacheStatsSnapshot) and on
//!   `marchgend`'s `/v1/stats`. Reads keep working throughout — a full
//!   disk can still serve existing entries — and no request a memory
//!   tier or recompute can serve ever fails because of the disk.
//!
//! With the `failpoints` cargo feature, the injection sites
//! `cache.disk.read`, `cache.disk.write` and `cache.disk.rename` let
//! the chaos suite (`tests/chaos_smoke.rs`) drive every one of these
//! paths deliberately.

use crate::key::CacheKey;
use marchgen_failpoint::fail_point;
use marchgen_generator::GenerateOutcome;
use marchgen_json::{FromJson, Json, ToJson};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// First recovery probe delay after a write failure; doubles per failed
/// probe up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(500);
/// Ceiling on the recovery-probe backoff.
const MAX_BACKOFF: Duration = Duration::from_secs(60);

/// One decoded disk entry: the outcome plus the canonical request text
/// it was stored under. Callers must compare `canonical` against the
/// request they are serving before using `outcome`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// The canonical key text ([`crate::canonical_key_text`]) of the
    /// request that produced this outcome.
    pub canonical: String,
    /// The cached outcome.
    pub outcome: GenerateOutcome,
}

/// Point-in-time health counters for a [`DiskStore`] — the disk slice
/// of [`CacheStatsSnapshot`](crate::CacheStatsSnapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStatsSnapshot {
    /// `true` while the store is memory-only after persistent write
    /// failures, awaiting a successful recovery probe.
    pub degraded: bool,
    /// Corrupt entries renamed aside (`<name>.quarantined`) instead of
    /// being re-parsed as misses forever.
    pub quarantined: u64,
    /// Failed entry writes (including failed recovery probes).
    pub write_failures: u64,
    /// Recovery probes attempted while degraded.
    pub probes: u64,
}

/// Backoff bookkeeping while degraded; `None` when healthy.
#[derive(Debug)]
struct Degraded {
    next_probe: Instant,
    backoff: Duration,
}

/// A directory of cached outcomes keyed by [`CacheKey`].
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Fast-path mirror of `degraded.lock().is_some()`.
    degraded_flag: AtomicBool,
    degraded: Mutex<Option<Degraded>>,
    quarantined: AtomicU64,
    write_failures: AtomicU64,
    probes: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir` and probes
    /// that it is actually writable, so a misconfigured cache directory
    /// fails fast at boot instead of degrading silently per-request.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures and failure of the
    /// writability probe (a create-then-delete of a throwaway file).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|err| {
            std::io::Error::new(
                err.kind(),
                format!("cannot create cache dir {}: {err}", dir.display()),
            )
        })?;
        let probe = dir.join(format!(".probe.{}", std::process::id()));
        std::fs::write(&probe, b"marchgen cache writability probe\n")
            .and_then(|()| std::fs::remove_file(&probe))
            .map_err(|err| {
                std::io::Error::new(
                    err.kind(),
                    format!("cache dir {} is not writable: {err}", dir.display()),
                )
            })?;
        Ok(DiskStore {
            dir,
            degraded_flag: AtomicBool::new(false),
            degraded: Mutex::new(None),
            quarantined: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the store is currently memory-only after write failures.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded_flag.load(Ordering::Relaxed)
    }

    /// The store's health counters.
    #[must_use]
    pub fn stats(&self) -> DiskStatsSnapshot {
        DiskStatsSnapshot {
            degraded: self.is_degraded(),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Whether an entry file exists under `key`, without decoding it.
    /// Used by the stale-schema probe: a hit here on the *previous*
    /// schema's key means the miss being served was caused by a key
    /// schema bump, not a cold cache.
    #[must_use]
    pub fn contains(&self, key: CacheKey) -> bool {
        self.path_for(key).exists()
    }

    /// Loads the entry stored under `key`; `None` when absent or
    /// undecodable (a corrupt entry is a miss, never an error). An
    /// undecodable file — corrupt JSON, or a pre-envelope bare outcome
    /// that cannot be verified against the request being served — is
    /// additionally **quarantined**: renamed to `<name>.quarantined`
    /// and counted, so the slot is reclaimed by the next compute
    /// instead of being re-parsed on every request.
    #[must_use]
    pub fn load(&self, key: CacheKey) -> Option<StoredEntry> {
        let path = self.path_for(key);
        let text = match self.read_entry(&path) {
            Ok(text) => text,
            // Absent or unreadable (I/O, not content): a plain miss.
            Err(_) => return None,
        };
        match decode_entry(&text) {
            Some(entry) => Some(entry),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// The raw read behind [`DiskStore::load`], split out so the
    /// `cache.disk.read` failpoint can inject I/O errors distinctly
    /// from content corruption.
    fn read_entry(&self, path: &Path) -> std::io::Result<String> {
        fail_point!("cache.disk.read", |msg: String| {
            Err(std::io::Error::other(msg))
        });
        std::fs::read_to_string(path)
    }

    /// Moves a corrupt entry aside so it is inspected once, not
    /// re-parsed forever. Best-effort: if even the rename fails the
    /// entry simply stays a per-request miss, as before.
    fn quarantine(&self, path: &Path) {
        let mut aside = path.as_os_str().to_owned();
        aside.push(".quarantined");
        if std::fs::rename(path, &aside).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Persists `outcome` under `key` atomically (temp file + rename),
    /// alongside the canonical request text a future hit verifies.
    /// Storage failures never propagate to the request that computed
    /// the outcome; they flip the store into degraded (memory-only)
    /// mode with exponential-backoff recovery probes — see the module
    /// docs.
    pub fn store(&self, key: CacheKey, canonical: &str, outcome: &GenerateOutcome) {
        let now = Instant::now();
        if self.degraded_flag.load(Ordering::Relaxed) && !self.probe_due(now) {
            return;
        }
        let result = self.write_entry(key, canonical, outcome);
        self.note_write(result.is_ok(), now);
    }

    /// Whether a degraded store should attempt this write as a
    /// recovery probe. Races between callers are benign: at worst two
    /// threads probe instead of one.
    fn probe_due(&self, now: Instant) -> bool {
        let state = self.degraded.lock().expect("disk degraded state");
        match state.as_ref() {
            Some(degraded) => {
                if now < degraded.next_probe {
                    false
                } else {
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
            // Another thread recovered the store between the fast-path
            // flag read and here.
            None => true,
        }
    }

    /// Records a write outcome: success restores (or keeps) normal
    /// service; failure enters degraded mode or doubles the backoff of
    /// an already-degraded store.
    fn note_write(&self, ok: bool, now: Instant) {
        let mut state = self.degraded.lock().expect("disk degraded state");
        if ok {
            if state.take().is_some() {
                self.degraded_flag.store(false, Ordering::Relaxed);
            }
            return;
        }
        self.write_failures.fetch_add(1, Ordering::Relaxed);
        let backoff = match state.as_ref() {
            Some(degraded) => MAX_BACKOFF.min(degraded.backoff * 2),
            None => INITIAL_BACKOFF,
        };
        *state = Some(Degraded {
            next_probe: now + backoff,
            backoff,
        });
        self.degraded_flag.store(true, Ordering::Relaxed);
    }

    /// The actual temp-write + rename, with its two failpoint sites.
    fn write_entry(
        &self,
        key: CacheKey,
        canonical: &str,
        outcome: &GenerateOutcome,
    ) -> std::io::Result<()> {
        let envelope = Json::object([
            ("canonical_request", Json::from(canonical)),
            ("outcome", outcome.to_json()),
        ]);
        let final_path = self.path_for(key);
        let temp_path = self.dir.join(format!(
            ".{key}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = write_temp(&temp_path, &envelope.render_pretty())
            .and_then(|()| rename_entry(&temp_path, &final_path));
        if written.is_err() {
            let _ = std::fs::remove_file(&temp_path);
        }
        written
    }
}

fn write_temp(temp_path: &Path, rendered: &str) -> std::io::Result<()> {
    fail_point!("cache.disk.write", |msg: String| {
        Err(std::io::Error::other(msg))
    });
    std::fs::write(temp_path, rendered)
}

fn rename_entry(temp_path: &Path, final_path: &Path) -> std::io::Result<()> {
    fail_point!("cache.disk.rename", |msg: String| {
        Err(std::io::Error::other(msg))
    });
    std::fs::rename(temp_path, final_path)
}

fn decode_entry(text: &str) -> Option<StoredEntry> {
    let doc = Json::parse(text).ok()?;
    let canonical = doc.get("canonical_request")?.as_str()?.to_owned();
    let outcome = GenerateOutcome::from_json(doc.get("outcome")?).ok()?;
    Some(StoredEntry { canonical, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_generator::{generate, GenerateRequest};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("marchgen-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn outcome() -> GenerateOutcome {
        generate(&GenerateRequest::from_fault_list("SAF").unwrap()).unwrap()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        let outcome = outcome();
        let key = CacheKey(42);
        assert!(store.load(key).is_none());
        store.store(key, "canonical-text", &outcome);
        let entry = store.load(key).expect("stored entry loads");
        assert_eq!(entry.canonical, "canonical-text");
        assert_eq!(entry.outcome, outcome);
        // The entry sits at the documented path and no temp litter
        // remains.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec![format!("{key}.json")]);
        assert_eq!(store.stats(), DiskStatsSnapshot::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses_and_are_quarantined() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        let key = CacheKey(7);
        let path = store.dir().join(format!("{key}.json"));
        std::fs::write(&path, "not json").unwrap();
        assert!(store.load(key).is_none());
        // Quarantined: moved aside and counted, so the next load is a
        // clean not-found miss rather than a re-parse.
        assert!(!path.exists());
        let aside = store.dir().join(format!("{key}.json.quarantined"));
        assert_eq!(std::fs::read_to_string(&aside).unwrap(), "not json");
        assert_eq!(store.stats().quarantined, 1);
        assert!(store.load(key).is_none());
        assert_eq!(store.stats().quarantined, 1, "quarantined exactly once");
        // The slot is reclaimable by a fresh write.
        store.store(key, "fresh", &outcome());
        assert!(store.load(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Entries written before the canonical-text envelope (a bare
    /// outcome document) cannot be verified and must read as misses —
    /// and, being undecodable for serving purposes, are quarantined.
    #[test]
    fn pre_envelope_entries_read_as_misses() {
        use marchgen_json::ToJson as _;
        let dir = temp_dir("pre-envelope");
        let store = DiskStore::open(&dir).unwrap();
        let outcome = outcome();
        let key = CacheKey(9);
        std::fs::write(
            store.dir().join(format!("{key}.json")),
            outcome.to_json_pretty(),
        )
        .unwrap();
        assert!(store.load(key).is_none());
        assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The boot-time writability probe: a cache dir that cannot be
    /// created (its parent is a plain file) fails `open` with a
    /// path-bearing message instead of degrading silently later.
    #[test]
    fn open_fails_fast_when_dir_cannot_be_created() {
        let dir = temp_dir("not-a-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        std::fs::write(&file, "x").unwrap();
        let err = DiskStore::open(file.join("cache")).unwrap_err();
        assert!(err.to_string().contains("cache dir"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn open_fails_fast_when_dir_is_unwritable() {
        use std::os::unix::fs::PermissionsExt as _;
        let dir = temp_dir("unwritable");
        std::fs::create_dir_all(&dir).unwrap();
        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        perms.set_mode(0o555);
        std::fs::set_permissions(&dir, perms.clone()).unwrap();
        // Root bypasses permission bits; only assert when the probe can
        // actually fail.
        let result = DiskStore::open(&dir);
        if std::fs::write(dir.join(".can-write"), "x").is_err() {
            let err = result.unwrap_err();
            assert!(err.to_string().contains("not writable"), "{err}");
        }
        perms.set_mode(0o755);
        std::fs::set_permissions(&dir, perms).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Write failures flip the store into memory-only degraded mode;
    /// recovery probes with exponential backoff restore it once the
    /// fault clears. Driven here by deleting the directory out from
    /// under the store (the ENOSPC/EACCES stand-in available to a unit
    /// test); the chaos suite drives the same path via failpoints.
    #[test]
    fn write_failures_degrade_then_probes_recover() {
        let dir = temp_dir("degrade");
        let store = DiskStore::open(&dir).unwrap();
        let outcome = outcome();
        std::fs::remove_dir_all(&dir).unwrap();
        store.store(CacheKey(1), "c1", &outcome);
        let stats = store.stats();
        assert!(stats.degraded);
        assert_eq!(stats.write_failures, 1);
        // Inside the backoff window: no disk attempt, no new failure.
        store.store(CacheKey(2), "c2", &outcome);
        assert_eq!(store.stats().write_failures, 1);
        assert_eq!(store.stats().probes, 0);
        // Fault still present at probe time: stays degraded, backoff
        // doubles.
        std::thread::sleep(INITIAL_BACKOFF + Duration::from_millis(50));
        store.store(CacheKey(3), "c3", &outcome);
        let stats = store.stats();
        assert!(stats.degraded);
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.write_failures, 2);
        // Fault cleared, but the next probe is now 1s out: still
        // memory-only until it fires.
        std::fs::create_dir_all(&dir).unwrap();
        store.store(CacheKey(4), "c4", &outcome);
        assert!(store.stats().degraded);
        std::thread::sleep(2 * INITIAL_BACKOFF + Duration::from_millis(50));
        store.store(CacheKey(5), "c5", &outcome);
        let stats = store.stats();
        assert!(!stats.degraded, "successful probe restores service");
        assert_eq!(stats.probes, 2);
        assert!(store.load(CacheKey(5)).is_some());
        // The writes skipped while degraded were dropped, not queued.
        assert!(store.load(CacheKey(2)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
