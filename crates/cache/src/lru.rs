//! A sharded, mutex-striped LRU map.
//!
//! Keys are pre-hashed [`CacheKey`]s, so shard selection is a bit mask
//! over the high key bits — no second hash. Each shard is an
//! independently locked map with approximate-LRU eviction: entries
//! carry the global access tick at which they were last touched, and an
//! over-capacity insert evicts the stalest entry of that shard. The
//! scan is `O(shard len)` but runs only on eviction, and shard
//! capacities are small (total capacity / shard count), so the constant
//! is tiny next to a single pipeline run.

use crate::key::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    touched: u64,
}

/// A concurrent LRU keyed by [`CacheKey`], value type `V` (cloned out
/// on hit).
pub struct ShardedLru<V> {
    shards: Vec<Mutex<HashMap<u128, Entry<V>>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// An LRU holding roughly `capacity` entries across all shards
    /// (clamped so every shard holds at least one).
    #[must_use]
    pub fn new(capacity: usize) -> ShardedLru<V> {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: (capacity / SHARDS).max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<HashMap<u128, Entry<V>>> {
        // High bits: FNV-1a diffuses well, and the low bits already pick
        // the on-disk fan-out in a future sharded store.
        &self.shards[(key.0 >> 124) as usize % SHARDS]
    }

    /// Looks up `key`, refreshing its recency on hit.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("lru shard lock");
        let entry = shard.get_mut(&key.0)?;
        entry.touched = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the stalest entry of the
    /// shard when it would exceed its capacity.
    pub fn insert(&self, key: CacheKey, value: V) {
        let touched = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("lru shard lock");
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&key.0) {
            if let Some(&stalest) = shard
                .iter()
                .min_by_key(|(_, entry)| entry.touched)
                .map(|(k, _)| k)
            {
                shard.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key.0, Entry { value, touched });
    }

    /// Entries currently resident across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard lock").len())
            .sum()
    }

    /// `true` when no entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> CacheKey {
        CacheKey(n)
    }

    #[test]
    fn get_after_insert() {
        let lru = ShardedLru::new(64);
        assert!(lru.is_empty());
        lru.insert(key(1), "one");
        lru.insert(key(2), "two");
        assert_eq!(lru.get(key(1)), Some("one"));
        assert_eq!(lru.get(key(3)), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let lru = ShardedLru::new(16);
        lru.insert(key(5), 1);
        lru.insert(key(5), 2);
        assert_eq!(lru.get(key(5)), Some(2));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn eviction_prefers_the_stalest_entry() {
        // Capacity 16 → one slot per shard; keys that land in the same
        // shard (same top 4 bits) contend for it.
        let lru = ShardedLru::new(16);
        let a = key(0x1);
        let b = key(0x2);
        lru.insert(a, "a");
        lru.insert(b, "b"); // evicts a (stalest, same shard 0)
        assert_eq!(lru.get(a), None);
        assert_eq!(lru.get(b), Some("b"));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        let lru = ShardedLru::new(32); // two slots per shard
        let (a, b, c) = (key(0x1), key(0x2), key(0x3));
        lru.insert(a, "a");
        lru.insert(b, "b");
        assert_eq!(lru.get(a), Some("a")); // refresh a; b is now stalest
        lru.insert(c, "c"); // evicts b
        assert_eq!(lru.get(a), Some("a"));
        assert_eq!(lru.get(b), None);
        assert_eq!(lru.get(c), Some("c"));
    }

    #[test]
    fn keys_spread_across_shards() {
        let lru = ShardedLru::new(SHARDS * 4);
        for i in 0..SHARDS as u128 {
            lru.insert(key(i << 124), i);
        }
        // One entry per shard — nothing evicted.
        assert_eq!(lru.len(), SHARDS);
        assert_eq!(lru.evictions(), 0);
    }
}
