//! # marchgen-cache
//!
//! A content-addressed outcome cache for the `marchgen` generation
//! engine, dependency-free and shareable across threads and processes.
//!
//! Identical generation problems are served from memory (sharded LRU),
//! then disk (one JSON file per key, written atomically), and only then
//! recomputed — with *single-flight* coalescing so concurrent identical
//! requests fund exactly one pipeline run. Keys are 128-bit FNV-1a
//! hashes of the canonical request encoding (see [`key`]): fault-list
//! permutations, duplicated models and spelled-out default fields all
//! collapse onto one entry, while every semantic knob change gets its
//! own.
//!
//! FNV-1a is **non-cryptographic**, so the key alone is never trusted:
//! every entry (memory and disk) stores the canonical key text it was
//! computed for, and a hit compares that text against the request being
//! served. A mismatch — an accidental or crafted collision, or a
//! corrupted entry — counts as a miss (tracked in
//! [`CacheStatsSnapshot::key_mismatches`]) and the right outcome is
//! recomputed; a colliding entry can therefore never be served as the
//! *wrong* outcome.
//!
//! ```
//! use marchgen_cache::{request_key, OutcomeCache};
//! use marchgen_generator::{generate, GenerateRequest};
//!
//! let cache = OutcomeCache::new(1024);
//! let request = GenerateRequest::from_fault_list("SAF, TF").unwrap();
//! let first = cache.get_or_compute(&request, generate).unwrap();
//! let again = cache.get_or_compute(&request, generate).unwrap();
//! assert!(!first.diagnostics.cache_hit);
//! assert!(again.diagnostics.cache_hit);
//! assert_eq!(first.test, again.test);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod key;
pub mod lru;

pub use disk::{DiskStatsSnapshot, DiskStore, StoredEntry};
pub use key::{
    canonical_key_text, key_for_text, previous_schema_key, request_key, CacheKey, KEY_SCHEMA,
};
pub use lru::ShardedLru;

use marchgen_generator::{GenerateOutcome, GenerateRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Monotonic counters describing cache behaviour since construction.
/// All counters are cumulative; rates belong to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Lookups answered from the in-memory LRU.
    pub memory_hits: u64,
    /// Lookups answered from the persistent store (and promoted to
    /// memory).
    pub disk_hits: u64,
    /// Lookups that found nothing in memory or on disk.
    pub misses: u64,
    /// Outcomes inserted (computed fresh and stored).
    pub inserts: u64,
    /// LRU entries displaced to make room.
    pub evictions: u64,
    /// Requests that coalesced onto another thread's in-flight
    /// computation instead of starting their own.
    pub coalesced: u64,
    /// Entries found under the right key but carrying the *wrong*
    /// canonical request text — an FNV collision or corruption. Each
    /// one was served as a miss instead of a wrong outcome.
    pub key_mismatches: u64,
    /// Misses whose request has a persisted entry under the *previous*
    /// key schema ([`key::KEY_SCHEMA`] history): recomputes forced by a
    /// schema bump rather than a cold cache. Pre-refactor disk entries
    /// surface here instead of looking like ordinary misses.
    pub key_schema_stale: u64,
    /// Health of the attached persistent store (degraded flag,
    /// quarantine and write-failure counters); `None` for memory-only
    /// caches.
    pub disk: Option<DiskStatsSnapshot>,
}

impl CacheStatsSnapshot {
    /// All hits, memory and disk.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }
}

#[derive(Default)]
struct CacheStats {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    coalesced: AtomicU64,
    key_mismatches: AtomicU64,
    key_schema_stale: AtomicU64,
}

/// A completion latch for one in-flight computation. Carries no result:
/// waiters re-check the cache once the leader finishes, which keeps the
/// flight type independent of the caller's error type.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn complete(&self) {
        // Poison-tolerant: called from the unwind path of FlightGuard.
        let mut done = match self.done.lock() {
            Ok(done) => done,
            Err(poisoned) => poisoned.into_inner(),
        };
        *done = true;
        drop(done);
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("flight lock");
        while !*done {
            done = self.cv.wait(done).expect("flight lock");
        }
    }
}

/// Removes and completes a leader's flight on scope exit, including
/// panic unwinds: waiters wake, re-check the cache, and the next one
/// becomes the new leader instead of blocking forever.
struct FlightGuard<'a> {
    cache: &'a OutcomeCache,
    key: CacheKey,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        // Runs during panic unwinds, so it must not panic itself:
        // tolerate lock poisoning and an already-removed flight.
        let mut flights = match self.cache.flights.lock() {
            Ok(flights) => flights,
            Err(poisoned) => poisoned.into_inner(),
        };
        let landed = flights.remove(&self.key.0);
        drop(flights);
        if let Some(landed) = landed {
            landed.complete();
        }
    }
}

/// The two-level (memory + optional disk), single-flight outcome cache.
pub struct OutcomeCache {
    memory: ShardedLru<StoredEntry>,
    disk: Option<DiskStore>,
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
    stats: CacheStats,
}

impl OutcomeCache {
    /// A memory-only cache holding roughly `capacity` outcomes.
    #[must_use]
    pub fn new(capacity: usize) -> OutcomeCache {
        OutcomeCache {
            memory: ShardedLru::new(capacity),
            disk: None,
            flights: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    /// Attaches a persistent store rooted at `dir` (created if absent):
    /// misses fall through to disk before computing, and computed
    /// outcomes are persisted for future processes.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_disk(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<OutcomeCache> {
        self.disk = Some(DiskStore::open(dir)?);
        Ok(self)
    }

    /// Looks `key` up in memory, then disk, **verifying** every
    /// candidate entry's stored canonical text against `canonical` —
    /// the FNV key is non-cryptographic, so the text comparison is what
    /// guarantees a hit is the *right* outcome (a mismatch counts as a
    /// miss and toward [`CacheStatsSnapshot::key_mismatches`]). Hits
    /// are re-stamped `cache_hit = true` in their
    /// [`Diagnostics`](marchgen_generator::Diagnostics), so replayed outcomes are
    /// byte-comparable to fresh ones modulo the diagnostics block. A
    /// miss counts toward [`CacheStatsSnapshot::misses`].
    #[must_use]
    pub fn lookup(&self, key: CacheKey, canonical: &str) -> Option<GenerateOutcome> {
        let hit = self.peek(key, canonical);
        if hit.is_none() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// [`OutcomeCache::lookup`] minus the miss accounting: a probe that
    /// will be followed by [`OutcomeCache::get_or_compute`] on a miss
    /// (which counts it) uses this, so one served request never counts
    /// two misses. Hits still count — they are final answers.
    #[must_use]
    pub fn peek(&self, key: CacheKey, canonical: &str) -> Option<GenerateOutcome> {
        let mut outcome = if let Some(entry) = self.memory.get(key) {
            if entry.canonical != canonical {
                // Collision (or corruption): the slot belongs to a
                // different canonical request. Never serve it.
                self.stats.key_mismatches.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            self.stats.memory_hits.fetch_add(1, Ordering::Relaxed);
            entry.outcome
        } else {
            let entry = self.disk.as_ref().and_then(|d| d.load(key))?;
            if entry.canonical != canonical {
                self.stats.key_mismatches.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            // Promote so the next lookup skips the filesystem.
            self.memory.insert(key, entry.clone());
            entry.outcome
        };
        outcome.diagnostics.cache_hit = true;
        Some(outcome)
    }

    /// Stores a freshly computed outcome under `key` (memory and, when
    /// attached, disk), together with the canonical request text future
    /// hits verify. The stored copy is always stamped
    /// `cache_hit = false`; [`OutcomeCache::lookup`] re-stamps on the
    /// way out.
    pub fn insert(&self, key: CacheKey, canonical: &str, outcome: &GenerateOutcome) {
        let mut stored = outcome.clone();
        stored.diagnostics.cache_hit = false;
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.store(key, canonical, &stored);
        }
        self.memory.insert(
            key,
            StoredEntry {
                canonical: canonical.to_owned(),
                outcome: stored,
            },
        );
    }

    /// The heart of the cache: returns the outcome for `request`,
    /// computing it with `compute` only when no cached copy exists and
    /// no other thread is already computing the same key
    /// (single-flight). Waiters block until the leader finishes, then
    /// read its result from the cache; if the leader *failed*, one
    /// waiter takes over as the new leader and retries (errors are
    /// cheap — parse and validation failures — and never cached).
    ///
    /// `compute` always receives the **canonical**
    /// ([`GenerateRequest::normalize`]d) form of the request, never the
    /// raw one: the stored entry must be a pure function of the key, so
    /// a request that bypassed the clamping builders (or listed its
    /// faults in a different order) cannot seed the shared entry with
    /// bytes a differently-spelled twin would not have produced.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns; errors are never cached.
    pub fn get_or_compute<E>(
        &self,
        request: &GenerateRequest,
        compute: impl Fn(&GenerateRequest) -> Result<GenerateOutcome, E>,
    ) -> Result<GenerateOutcome, E> {
        let canonical = canonical_key_text(request);
        let key = key_for_text(&canonical);
        loop {
            if let Some(hit) = self.lookup(key, &canonical) {
                return Ok(hit);
            }
            let flight = {
                let mut flights = self.flights.lock().expect("flights lock");
                match flights.get(&key.0) {
                    Some(in_flight) => Some(Arc::clone(in_flight)),
                    None => {
                        flights.insert(key.0, Arc::new(Flight::new()));
                        None
                    }
                }
            };
            match flight {
                None => {
                    // Leader: compute, publish, land the flight. (The
                    // miss was already counted by the failed lookup.)
                    // The guard lands the flight even if `compute`
                    // panics — an abandoned flight would wedge every
                    // future request for this key forever.
                    self.probe_stale_schema(request);
                    let _guard = FlightGuard { cache: self, key };
                    let result = compute(&request.clone().normalize());
                    if let Ok(outcome) = &result {
                        self.insert(key, &canonical, outcome);
                    }
                    return result;
                }
                Some(in_flight) => {
                    // Waiter: coalesce, then re-check from the top.
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    in_flight.wait();
                }
            }
        }
    }

    /// On a miss about to be recomputed, checks whether the persistent
    /// store still holds this request's entry under the *previous* key
    /// schema — a pre-bump entry the schema change invalidated. Counts
    /// it so operators can tell a schema-bump recompute storm from a
    /// genuinely cold cache.
    fn probe_stale_schema(&self, request: &GenerateRequest) {
        if let Some(disk) = &self.disk {
            if disk.contains(key::previous_schema_key(request)) {
                self.stats.key_schema_stale.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A consistent-enough snapshot of the cumulative counters (each
    /// counter is read atomically; the set is not).
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            memory_hits: self.stats.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            evictions: self.memory.evictions(),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            key_mismatches: self.stats.key_mismatches.load(Ordering::Relaxed),
            key_schema_stale: self.stats.key_schema_stale.load(Ordering::Relaxed),
            disk: self.disk.as_ref().map(DiskStore::stats),
        }
    }

    /// Outcomes currently resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.memory.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_generator::{generate, GenerateError};
    use std::sync::atomic::AtomicUsize;

    fn req(list: &str) -> GenerateRequest {
        GenerateRequest::from_fault_list(list).unwrap()
    }

    #[test]
    fn hit_path_stamps_cache_hit() {
        let cache = OutcomeCache::new(64);
        let request = req("SAF");
        let computed = cache.get_or_compute(&request, generate).unwrap();
        assert!(!computed.diagnostics.cache_hit);
        let replayed = cache.get_or_compute(&request, generate).unwrap();
        assert!(replayed.diagnostics.cache_hit);
        // Byte-comparable modulo diagnostics.
        assert_eq!(computed.test, replayed.test);
        assert_eq!(computed.tour, replayed.tour);
        assert_eq!(computed.report, replayed.report);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn permuted_requests_share_an_entry() {
        let cache = OutcomeCache::new(64);
        let _ = cache
            .get_or_compute(&req("SAF, TF, CFin"), generate)
            .unwrap();
        let replay = cache
            .get_or_compute(&req("CFin, TF, SAF"), generate)
            .unwrap();
        assert!(replay.diagnostics.cache_hit);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_are_returned_and_never_cached() {
        let cache = OutcomeCache::new(64);
        let empty = GenerateRequest::default();
        for _ in 0..2 {
            let err = cache.get_or_compute(&empty, generate).unwrap_err();
            assert!(matches!(err, GenerateError::EmptyFaultList));
        }
        // Both calls computed — failures leave no entry behind.
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().inserts, 0);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn disk_round_trip_across_cache_instances() {
        let dir =
            std::env::temp_dir().join(format!("marchgen-cache-lib-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let request = req("SAF, TF");
        let computed = {
            let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
            cache.get_or_compute(&request, generate).unwrap()
        };
        // A fresh process (modelled by a fresh cache) hits disk.
        let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
        let replayed = cache.get_or_compute(&request, generate).unwrap();
        assert!(replayed.diagnostics.cache_hit);
        assert_eq!(computed.test, replayed.test);
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 0);
        // The disk hit was promoted: a second lookup stays in memory.
        let _ = cache.get_or_compute(&request, generate).unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A leader whose compute panics must land its flight on the way
    /// out — otherwise every later request for the key blocks forever.
    #[test]
    fn a_panicking_leader_does_not_wedge_the_key() {
        let cache = OutcomeCache::new(64);
        let request = req("SAF");
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute(&request, |_| -> Result<GenerateOutcome, ()> {
                panic!("compute exploded")
            });
        }));
        assert!(attempt.is_err(), "the panic propagates to the caller");
        // The key is free again: a fresh compute succeeds and caches.
        let outcome = cache.get_or_compute(&request, generate).unwrap();
        assert_eq!(outcome.complexity(), 4);
        assert!(
            cache
                .get_or_compute(&request, generate)
                .unwrap()
                .diagnostics
                .cache_hit
        );
    }

    /// The computation a leader runs is the canonical form: a request
    /// that bypassed the clamping builders cannot seed the shared entry
    /// with bytes its well-formed twin would not produce.
    #[test]
    fn leaders_compute_the_canonical_form() {
        let cache = OutcomeCache::new(64);
        let mut raw = req("SAF");
        raw.tour_cap = 0; // bypasses with_tour_cap's clamp
        let outcome = cache
            .get_or_compute(&raw, |r| {
                assert_eq!(r.tour_cap, 1, "compute sees the clamped request");
                generate(r)
            })
            .unwrap();
        assert_eq!(outcome.complexity(), 4);
        // The well-formed twin (`tour_cap` clamped to 1 by the builder,
        // exactly what `0` normalizes to) hits the same entry.
        let twin = cache
            .get_or_compute(&req("SAF").with_tour_cap(1), generate)
            .unwrap();
        assert!(twin.diagnostics.cache_hit);
    }

    /// Regression (collision safety): an entry stored under a key must
    /// never be served to a request whose canonical text differs — a
    /// 128-bit FNV collision, accidental or crafted, is a miss, not a
    /// wrong outcome.
    #[test]
    fn colliding_entries_are_misses_not_wrong_outcomes() {
        let cache = OutcomeCache::new(64);
        let saf = req("SAF");
        let outcome = generate(&saf).unwrap();
        let key = request_key(&saf);
        cache.insert(key, &canonical_key_text(&saf), &outcome);

        // Simulate a colliding request: same 128-bit key, different
        // canonical text (the attack/accident the key alone cannot
        // distinguish).
        let impostor_text = "marchgen-cache/v2;faults=TF<u>;something-else";
        assert!(
            cache.lookup(key, impostor_text).is_none(),
            "colliding lookup must miss"
        );
        let stats = cache.stats();
        assert_eq!(stats.key_mismatches, 1);
        assert_eq!(stats.misses, 1);
        // The rightful owner still hits.
        assert!(cache.lookup(key, &canonical_key_text(&saf)).is_some());
    }

    /// The same verification holds through the persistent store: a
    /// disk entry whose stored canonical text does not match the
    /// request being served reads as a miss.
    #[test]
    fn colliding_disk_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!(
            "marchgen-cache-collision-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let saf = req("SAF");
        let outcome = generate(&saf).unwrap();
        let key = request_key(&saf);
        {
            let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
            cache.insert(key, &canonical_key_text(&saf), &outcome);
        }
        // Fresh process (fresh memory), same disk: the impostor text
        // must not be served the stored outcome.
        let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
        assert!(cache.lookup(key, "different-canonical-text").is_none());
        assert_eq!(cache.stats().key_mismatches, 1);
        assert!(cache.lookup(key, &canonical_key_text(&saf)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A disk directory populated by the previous release (entries
    /// keyed under schema v1) serves clean misses — and the probe
    /// counts each one as `key_schema_stale`, so the recompute storm a
    /// schema bump causes is distinguishable from a cold cache.
    #[test]
    fn pre_bump_disk_entries_count_as_schema_stale_misses() {
        let dir = std::env::temp_dir().join(format!(
            "marchgen-cache-schema-stale-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let request = req("SAF, TF");
        let outcome = generate(&request).unwrap();
        {
            // Simulate the previous release: its entry sits under the
            // v1 key, with v1 canonical text.
            let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
            let old_text = canonical_key_text(&request).replacen("/v2;", "/v1;", 1);
            cache.insert(previous_schema_key(&request), &old_text, &outcome);
        }
        let cache = OutcomeCache::new(64).with_disk(&dir).unwrap();
        let replayed = cache.get_or_compute(&request, generate).unwrap();
        assert!(!replayed.diagnostics.cache_hit, "v1 entry must not serve");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.key_schema_stale, 1);
        // A genuinely cold request does not count as schema-stale.
        let _ = cache.get_or_compute(&req("SOF"), generate).unwrap();
        assert_eq!(cache.stats().key_schema_stale, 1);
        // Once recomputed under v2, the request hits normally again.
        assert!(
            cache
                .get_or_compute(&request, generate)
                .unwrap()
                .diagnostics
                .cache_hit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_requests() {
        let cache = OutcomeCache::new(64);
        let computes = AtomicUsize::new(0);
        let request = req("SAF, TF, ADF, CFin, CFid");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let outcome = cache
                        .get_or_compute(&request, |r| {
                            computes.fetch_add(1, Ordering::SeqCst);
                            generate(r)
                        })
                        .unwrap();
                    assert_eq!(outcome.complexity(), 10);
                });
            }
        });
        // Exactly one thread ran the pipeline; the rest coalesced or
        // hit the finished entry.
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().inserts, 1);
    }
}
