//! Content-addressed cache keys for [`GenerateRequest`]s.
//!
//! The key is a 128-bit FNV-1a hash over a canonical, versioned text
//! encoding of the *normalized* request
//! ([`GenerateRequest::normalize`]): the fault list sorted in taxonomy
//! order and deduplicated, every semantic knob spelled out explicitly
//! (so omitted-and-defaulted JSON fields key identically to explicit
//! defaults), and a schema tag so a future wire-format revision can
//! never replay stale entries.
//!
//! Two request fields are deliberately **excluded** from the key:
//! `verifier` and `search_threads`. Both are execution knobs proven
//! outcome-invariant by the differential and determinism test suites
//! (`crates/sim/tests/differential.rs`, `tests/determinism.rs`), so
//! clients running with different thread counts or verification
//! backends share cache entries for the same generation problem.

use marchgen_generator::GenerateRequest;
use marchgen_tpg::StartPolicy;
use std::fmt;

/// Version tag folded into every key. Bump when the canonical encoding
/// or the outcome schema changes incompatibly.
///
/// History: v1 was the pre-primitive-layer encoding (classical fault
/// taxonomy, no `setup` field in the TP wire schema); v2 covers the
/// extended workload space (dynamic + linked faults). Entries persisted
/// under v1 keys are clean misses for a v2 process — the stale-entry
/// probe ([`previous_schema_key`]) lets the cache *count* them
/// (`key_schema_stale`) instead of mistaking them for cold misses.
pub const KEY_SCHEMA: u32 = 2;

/// The schema tag the previous release stamped into its keys.
const PREVIOUS_KEY_SCHEMA: u32 = 1;

const FNV_OFFSET_128: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME_128: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash identifying one normalized generation
/// problem. Renders as (and parses from) 32 lowercase hex digits — the
/// on-disk file stem of the persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Parses the 32-hex-digit rendering back into a key.
    #[must_use]
    pub fn from_hex(text: &str) -> Option<CacheKey> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(CacheKey)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET_128;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(FNV_PRIME_128);
    }
    hash
}

/// The canonical key text of a request — the exact bytes that get
/// hashed. Exposed (rather than kept private to [`request_key`]) so
/// tests and debugging tools can see *why* two requests collide or
/// diverge.
#[must_use]
pub fn canonical_key_text(request: &GenerateRequest) -> String {
    canonical_text_for_schema(request, KEY_SCHEMA)
}

/// The key this request would have hashed to under the *previous*
/// schema tag. The cache probes this on a disk miss to tell "pre-bump
/// entry invalidated by the schema change" apart from a genuinely cold
/// key (surfaced as `key_schema_stale`).
#[must_use]
pub fn previous_schema_key(request: &GenerateRequest) -> CacheKey {
    key_for_text(&canonical_text_for_schema(request, PREVIOUS_KEY_SCHEMA))
}

fn canonical_text_for_schema(request: &GenerateRequest, schema: u32) -> String {
    let normal = request.clone().normalize();
    let mut text = format!("marchgen-cache/v{schema};faults=");
    for (k, model) in normal.faults.iter().enumerate() {
        if k > 0 {
            text.push(',');
        }
        text.push_str(&model.name());
    }
    let start = match normal.start_policy {
        StartPolicy::Uniform => "uniform",
        StartPolicy::Free => "free",
    };
    text.push_str(&format!(
        ";start={start};solver={};tour_cap={};verify_cells={};compact={};\
         check_redundancy={};max_combinations={}",
        normal.solver.key(),
        normal.tour_cap,
        normal.verify_cells,
        normal.compact,
        normal.check_redundancy,
        normal.max_combinations,
    ));
    text
}

/// The key a canonical text hashes to. [`request_key`] composes this
/// with [`canonical_key_text`]; callers that already hold the text
/// (the collision-verifying hit path stores it next to every entry)
/// use this directly instead of re-deriving it.
#[must_use]
pub fn key_for_text(canonical: &str) -> CacheKey {
    CacheKey(fnv1a_128(canonical.as_bytes()))
}

/// The content-addressed key of a request (see the module docs for what
/// is and is not part of the identity).
///
/// FNV-1a is non-cryptographic: two *different* canonical texts can —
/// accidentally or by construction — hash to the same 128-bit key.
/// The cache therefore never trusts the key alone; every stored entry
/// carries its canonical text and a hit compares it (mismatch = miss).
#[must_use]
pub fn request_key(request: &GenerateRequest) -> CacheKey {
    key_for_text(&canonical_key_text(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_generator::VerifierChoice;

    #[test]
    fn hex_roundtrip() {
        let key = CacheKey(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let text = key.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(CacheKey::from_hex(&text), Some(key));
        assert_eq!(CacheKey::from_hex("xyz"), None);
        assert_eq!(CacheKey::from_hex(""), None);
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 128 reference values.
        assert_eq!(fnv1a_128(b""), FNV_OFFSET_128);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
    }

    #[test]
    fn permuted_fault_lists_share_a_key() {
        let a = GenerateRequest::from_fault_list("SAF, TF, CFin").unwrap();
        let b = GenerateRequest::from_fault_list("CFin, SAF, TF").unwrap();
        assert_ne!(a.faults, b.faults);
        assert_eq!(request_key(&a), request_key(&b));
    }

    #[test]
    fn execution_knobs_do_not_change_the_key() {
        let base = GenerateRequest::from_fault_list("SAF, CFid").unwrap();
        let tweaked = base
            .clone()
            .with_verifier(VerifierChoice::Scalar)
            .with_search_threads(7);
        assert_eq!(request_key(&base), request_key(&tweaked));
    }

    #[test]
    fn schema_tag_is_stamped_and_versions_never_collide() {
        let request = GenerateRequest::from_fault_list("SAF, TF").unwrap();
        assert!(
            canonical_key_text(&request).starts_with("marchgen-cache/v2;"),
            "{}",
            canonical_key_text(&request)
        );
        assert_ne!(
            request_key(&request),
            previous_schema_key(&request),
            "a schema bump must invalidate every persisted key"
        );
    }

    #[test]
    fn extended_fault_classes_key_distinctly() {
        let a = GenerateRequest::from_fault_list("dRDF<0>").unwrap();
        let b = GenerateRequest::from_fault_list("dDRDF<0>").unwrap();
        let c = GenerateRequest::from_fault_list("LCF<0>").unwrap();
        assert_ne!(request_key(&a), request_key(&b));
        assert_ne!(request_key(&a), request_key(&c));
    }

    #[test]
    fn semantic_fields_change_the_key() {
        let base = GenerateRequest::from_fault_list("SAF").unwrap();
        let variants = [
            GenerateRequest::from_fault_list("SAF, TF").unwrap(),
            base.clone().with_verify_cells(6),
            base.clone().with_compact(false),
            base.clone().with_tour_cap(7),
            base.clone().with_max_combinations(9),
            base.clone().with_check_redundancy(true),
        ];
        for variant in &variants {
            assert_ne!(
                request_key(&base),
                request_key(variant),
                "{}",
                canonical_key_text(variant)
            );
        }
    }
}
