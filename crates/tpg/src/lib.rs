//! # marchgen-tpg
//!
//! The **Test Pattern Graph** of paper Section 4: a complete weighted
//! digraph whose nodes are Test Patterns and whose arc weights count the
//! bridging writes needed to chain one TP after another,
//!
//! ```text
//! weight(u → v) = hamming-distance(obs_state(u), init_state(v))   (f.4.1)
//! ```
//!
//! A minimum-weight Hamiltonian *path* through the TPG orders the TPs into
//! a minimum-length Global Test Sequence. The path problem reduces to the
//! ATSP by closing the cycle through a dummy node ([`path`]); the paper's
//! additional constraint f.4.4 — the first TP must have a uniform
//! (`00`/`11`) initialization — becomes a restriction on the dummy's
//! outgoing arcs.
//!
//! # Example — paper Figure 4
//!
//! ```
//! use marchgen_faults::{parse_fault_list, requirements_for};
//! use marchgen_tpg::Tpg;
//!
//! // FaultList = {⟨↑,1⟩, ⟨↑,0⟩}
//! let models = parse_fault_list("CFid<u,1>, CFid<u,0>").unwrap();
//! let tps: Vec<_> = requirements_for(&models)
//!     .iter()
//!     .map(|r| r.alternatives[0])
//!     .collect();
//! let tpg = Tpg::new(tps);
//! let mut weights: Vec<u32> = tpg.arcs().map(|(_, _, w)| w).collect();
//! weights.sort_unstable();
//! assert_eq!(weights, vec![0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod path;

pub use graph::Tpg;
pub use path::{plan_tour, plan_tour_with, plan_tour_with_stats, StartPolicy, TourPlan};
