//! TPG construction, the f.4.1 weight function and DOT export.

use marchgen_faults::TestPattern;
use std::fmt::Write as _;

/// The Test Pattern Graph: a strongly connected weighted digraph over a
/// set of Test Patterns (paper Section 4, Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tpg {
    tps: Vec<TestPattern>,
}

impl Tpg {
    /// Builds the TPG over the given TPs.
    #[must_use]
    pub fn new(tps: Vec<TestPattern>) -> Tpg {
        Tpg { tps }
    }

    /// The node TPs, in index order.
    #[must_use]
    pub fn test_patterns(&self) -> &[TestPattern] {
        &self.tps
    }

    /// Number of nodes `V`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tps.len()
    }

    /// `true` when the graph has no node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tps.is_empty()
    }

    /// The f.4.1 arc weight: writes needed to reach `to`'s initialization
    /// from `from`'s observation state.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn weight(&self, from: usize, to: usize) -> u32 {
        self.tps[from].obs_state().distance_to(&self.tps[to].init)
    }

    /// The writes from scratch (power-up `--` state) into `node`'s
    /// initialization — the cost of starting the GTS at that TP.
    #[must_use]
    pub fn init_cost(&self, node: usize) -> u32 {
        marchgen_model::PairState::UNKNOWN.distance_to(&self.tps[node].init)
    }

    /// Iterates all directed arcs `(from, to, weight)`, `from != to`.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.len()).flat_map(move |from| {
            (0..self.len())
                .filter(move |&to| to != from)
                .map(move |to| (from, to, self.weight(from, to)))
        })
    }

    /// Total weight of visiting the nodes in `order` as an open path.
    #[must_use]
    pub fn path_weight(&self, order: &[usize]) -> u32 {
        order.windows(2).map(|w| self.weight(w[0], w[1])).sum()
    }

    /// The number of operations of the Global Test Sequence induced by
    /// visiting `order`: initialization writes of the first TP, each TP's
    /// excitation and observation operations, and the bridging writes of
    /// every arc. (The §4 worked example: 12 operations.)
    #[must_use]
    pub fn gts_op_count(&self, order: &[usize]) -> u32 {
        let Some(&first) = order.first() else {
            return 0;
        };
        let mut ops = self.init_cost(first);
        for &node in order {
            let tp = &self.tps[node];
            ops += 1; // excitation
            if matches!(tp.observe, marchgen_faults::Observation::Read { .. }) {
                ops += 1; // separate read-and-verify
            }
        }
        ops + self.path_weight(order)
    }

    /// Graphviz DOT rendering in the style of paper Figure 4.
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=LR;");
        let _ = writeln!(s, "  node [shape=box, fontname=\"Helvetica\"];");
        for (k, tp) in self.tps.iter().enumerate() {
            let _ = writeln!(s, "  tp{k} [label=\"TP{} {tp}\"];", k + 1);
        }
        for (from, to, w) in self.arcs() {
            let _ = writeln!(s, "  tp{from} -> tp{to} [label=\"{w}\"];");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, requirements_for};

    /// The four TPs of the §4 example, in TP1..TP4 order.
    fn section4_tps() -> Vec<TestPattern> {
        // TP1 = (01, w1i, r1j), TP2 = (10, w1j, r1i) from ⟨↑,0⟩;
        // TP3 = (00, w1i, r0j), TP4 = (00, w1j, r0i) from ⟨↑,1⟩.
        let up0 = parse_fault_list("CFid<u,0>").unwrap();
        let up1 = parse_fault_list("CFid<u,1>").unwrap();
        let mut tps = Vec::new();
        for r in requirements_for(&up0) {
            tps.push(r.alternatives[0]);
        }
        for r in requirements_for(&up1) {
            tps.push(r.alternatives[0]);
        }
        tps
    }

    /// Paper Figure 4: the TPG for {⟨↑,1⟩, ⟨↑,0⟩} has arc weights
    /// 0 ×2, 1 ×4, 2 ×6.
    #[test]
    fn figure4_weight_multiset() {
        let tpg = Tpg::new(section4_tps());
        assert_eq!(tpg.len(), 4);
        let mut weights: Vec<u32> = tpg.arcs().map(|(_, _, w)| w).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
    }

    /// The specific zero-weight arcs of Figure 4: TP3 → TP2 and TP4 → TP1.
    #[test]
    fn figure4_zero_arcs() {
        let tpg = Tpg::new(section4_tps());
        // indices: TP1=0, TP2=1, TP3=2, TP4=3
        assert_eq!(tpg.weight(2, 1), 0);
        assert_eq!(tpg.weight(3, 0), 0);
        assert_eq!(tpg.weight(0, 1), 1);
        assert_eq!(tpg.weight(2, 0), 2);
    }

    /// The §4 worked example GTS (tour TP3 → TP2 → TP4 → TP1) has 12
    /// operations.
    #[test]
    fn section4_gts_op_count() {
        let tpg = Tpg::new(section4_tps());
        let order = [2usize, 1, 3, 0];
        assert_eq!(tpg.path_weight(&order), 2);
        assert_eq!(tpg.gts_op_count(&order), 12);
    }

    #[test]
    fn init_costs() {
        let tpg = Tpg::new(section4_tps());
        // Every §4 TP constrains both cells → 2 writes from power-up.
        for k in 0..tpg.len() {
            assert_eq!(tpg.init_cost(k), 2);
        }
    }

    #[test]
    fn dot_contains_every_arc() {
        let tpg = Tpg::new(section4_tps());
        let dot = tpg.to_dot("TPG");
        assert_eq!(dot.matches(" -> ").count(), 12);
        assert!(dot.contains("TP1"));
    }

    #[test]
    fn empty_graph() {
        let tpg = Tpg::new(Vec::new());
        assert!(tpg.is_empty());
        assert_eq!(tpg.gts_op_count(&[]), 0);
    }
}
