//! Reduction of the minimum-weight TPG *path* problem to the ATSP, with
//! the paper's start constraint (f.4.4).
//!
//! A GTS is an open path (first and last TP differ), while ATSP solutions
//! are cycles; the paper closes the cycle with dummy nodes. We use the
//! standard single-dummy construction (equivalent to the paper's
//! two-dummy one): a virtual node `D` with
//!
//! * `cost(x → D) = 0` for every TP `x` (the path may end anywhere), and
//! * `cost(D → y) = init_cost(y)` when `y` is an allowed start, `∞`
//!   otherwise.
//!
//! Charging the *initialization writes* on the dummy's outgoing arc makes
//! the ATSP objective equal the exact GTS operation count (up to the
//! fixed per-TP excitation/observation operations), so "minimum-weight
//! tour" and "minimum-length GTS" coincide.

use crate::graph::Tpg;
use marchgen_atsp::{AtspInstance, AtspSolver, AutoSolver, SolveStats, Tour, INF};

/// Which TPs may start the Global Test Sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StartPolicy {
    /// f.4.4: the first TP's initialization must be *uniform* (all
    /// specified cells hold the same value — the "00"/"11" states) so the
    /// March test can open with a single background write element. The
    /// paper shows this yields the lowest-complexity results.
    #[default]
    Uniform,
    /// No restriction (the ablation configuration).
    Free,
}

impl StartPolicy {
    fn allows(self, tpg: &Tpg, node: usize) -> bool {
        match self {
            StartPolicy::Free => true,
            StartPolicy::Uniform => tpg.test_patterns()[node].init.is_uniform(),
        }
    }
}

/// An ordered visit plan of all TPG nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TourPlan {
    /// TP indices in visit order.
    pub order: Vec<usize>,
    /// Total GTS operation count (f.4.3 objective plus the fixed per-TP
    /// operations).
    pub gts_ops: u32,
}

/// Plans minimum-length tours through the TPG: solves the dummy-closed
/// ATSP and returns every optimal visit order (up to `cap`), so the
/// March constructor can try each and keep the shortest test.
///
/// Falls back to [`StartPolicy::Free`] when the uniform-start constraint
/// is unsatisfiable (no TP has a uniform initialization).
///
/// Returns an empty vector only for an empty TPG.
#[must_use]
pub fn plan_tour(tpg: &Tpg, policy: StartPolicy, cap: usize) -> Vec<TourPlan> {
    plan_tour_with(tpg, policy, cap, &AutoSolver)
}

/// [`plan_tour`] with an explicit [`AtspSolver`] strategy — the
/// extension point the request layer's `SolverChoice` plugs into.
#[must_use]
pub fn plan_tour_with(
    tpg: &Tpg,
    policy: StartPolicy,
    cap: usize,
    solver: &dyn AtspSolver,
) -> Vec<TourPlan> {
    plan_tour_with_stats(tpg, policy, cap, solver).0
}

/// [`plan_tour_with`] plus the solver's [`SolveStats`] for this TPG —
/// exact backends report zeros, the local search its iteration and
/// restart counts. The request layer aggregates these per generation
/// run into its diagnostics.
#[must_use]
pub fn plan_tour_with_stats(
    tpg: &Tpg,
    policy: StartPolicy,
    cap: usize,
    solver: &dyn AtspSolver,
) -> (Vec<TourPlan>, SolveStats) {
    let v = tpg.len();
    if v == 0 {
        return (Vec::new(), SolveStats::default());
    }
    if v == 1 {
        return (
            vec![TourPlan {
                order: vec![0],
                gts_ops: tpg.gts_op_count(&[0]),
            }],
            SolveStats::default(),
        );
    }
    let effective = if (0..v).any(|n| policy.allows(tpg, n)) {
        policy
    } else {
        StartPolicy::Free
    };

    // Node v is the dummy. Index 0..v are TPs.
    let dummy = v;
    let inst = AtspInstance::from_fn(v + 1, |i, j| {
        if i == dummy {
            if effective.allows(tpg, j) {
                u64::from(tpg.init_cost(j))
            } else {
                INF
            }
        } else if j == dummy {
            0
        } else {
            u64::from(tpg.weight(i, j))
        }
    });

    let (tours, stats) = solver.solve_all_optimal_with_stats(&inst, cap);
    (
        tours
            .into_iter()
            .map(|t| cut_at_dummy(tpg, &t, dummy))
            .collect(),
        stats,
    )
}

fn cut_at_dummy(tpg: &Tpg, tour: &Tour, dummy: usize) -> TourPlan {
    let pos = tour
        .order
        .iter()
        .position(|&n| n == dummy)
        .expect("dummy in tour");
    let mut order = Vec::with_capacity(tour.order.len() - 1);
    for k in 1..tour.order.len() {
        order.push(tour.order[(pos + k) % tour.order.len()]);
    }
    let gts_ops = tpg.gts_op_count(&order);
    TourPlan { order, gts_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, requirements_for, TestPattern};

    fn section4_tps() -> Vec<TestPattern> {
        let mut tps = Vec::new();
        for token in ["CFid<u,0>", "CFid<u,1>"] {
            let models = parse_fault_list(token).unwrap();
            for r in requirements_for(&models) {
                tps.push(r.alternatives[0]);
            }
        }
        tps
    }

    /// The §4 example: minimum-weight uniform-start tours have path weight
    /// 2 and GTS length 12 (the paper's worked GTS).
    #[test]
    fn section4_optimal_plan() {
        let tpg = Tpg::new(section4_tps());
        let plans = plan_tour(&tpg, StartPolicy::Uniform, 64);
        assert!(!plans.is_empty());
        for plan in &plans {
            assert_eq!(plan.gts_ops, 12, "plan {:?}", plan.order);
            // Start TP must have uniform init (TP3 or TP4, indices 2/3).
            let first = plan.order[0];
            assert!(tpg.test_patterns()[first].init.is_uniform());
            // All four TPs visited exactly once.
            let mut sorted = plan.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    /// Both optimal tour shapes of the example appear:
    /// TP3→TP2→TP4→TP1 and TP3→TP4→TP1→TP2 (and TP4-first mirrors).
    #[test]
    fn section4_multiple_optima_enumerated() {
        let tpg = Tpg::new(section4_tps());
        let plans = plan_tour(&tpg, StartPolicy::Uniform, 64);
        assert!(
            plans.len() >= 2,
            "expected several optimal tours, got {}",
            plans.len()
        );
        assert!(plans.iter().any(|p| p.order == vec![2, 1, 3, 0]));
    }

    /// Without the f.4.4 constraint the optimum cannot get worse.
    #[test]
    fn free_start_never_worse() {
        let tpg = Tpg::new(section4_tps());
        let uniform = plan_tour(&tpg, StartPolicy::Uniform, 8)[0].gts_ops;
        let free = plan_tour(&tpg, StartPolicy::Free, 8)[0].gts_ops;
        assert!(free <= uniform);
    }

    /// Unsatisfiable uniform constraint falls back to free starts.
    #[test]
    fn uniform_fallback() {
        // Two TPs, both with non-uniform (01/10) inits.
        let models = parse_fault_list("CFid<u,0>").unwrap();
        let tps: Vec<TestPattern> = requirements_for(&models)
            .iter()
            .map(|r| r.alternatives[0])
            .collect();
        assert!(tps.iter().all(|tp| !tp.init.is_uniform()));
        let tpg = Tpg::new(tps);
        let plans = plan_tour(&tpg, StartPolicy::Uniform, 8);
        assert!(!plans.is_empty());
    }

    #[test]
    fn single_tp_plan() {
        let models = parse_fault_list("SA0").unwrap();
        let tps: Vec<TestPattern> = requirements_for(&models)
            .iter()
            .map(|r| r.alternatives[0])
            .collect();
        let tpg = Tpg::new(tps);
        let plans = plan_tour(&tpg, StartPolicy::Uniform, 8);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].order, vec![0]);
        // SA0: no init writes, excite w1 + observe r1 = 2 ops.
        assert_eq!(plans[0].gts_ops, 2);
    }

    #[test]
    fn empty_tpg_plan() {
        let tpg = Tpg::new(Vec::new());
        assert!(plan_tour(&tpg, StartPolicy::Uniform, 8).is_empty());
    }
}
