//! Property tests for the ATSP solvers: exactness, agreement and
//! invariances across random instances (deterministic `marchgen-testkit`
//! harness).

use marchgen_atsp::{
    branch_bound, brute, held_karp, heuristics, hungarian, local_search, AtspInstance,
};
use marchgen_testkit::{run_cases, Rng};

fn random_instance(rng: &mut Rng, max_n: usize) -> AtspInstance {
    let n = rng.range(2, max_n + 1);
    let costs: Vec<u64> = (0..n * n).map(|_| rng.next_u64() % 100).collect();
    AtspInstance::from_fn(n, |i, j| costs[i * n + j])
}

/// Held–Karp equals brute force on small instances.
#[test]
fn held_karp_is_exact() {
    run_cases("held_karp_is_exact", 64, |rng| {
        let inst = random_instance(rng, 7);
        let hk = held_karp::solve(&inst);
        let bf = brute::solve(&inst);
        assert_eq!(hk.cost, bf.cost);
        assert!(inst.is_valid_tour(&hk.order));
        assert_eq!(inst.cycle_cost(&hk.order), hk.cost);
    });
}

/// Branch-and-bound equals Held–Karp on mid-size instances.
#[test]
fn branch_bound_is_exact() {
    run_cases("branch_bound_is_exact", 64, |rng| {
        let inst = random_instance(rng, 9);
        let bb = branch_bound::solve(&inst);
        let hk = held_karp::solve(&inst);
        assert_eq!(bb.cost, hk.cost);
        assert!(inst.is_valid_tour(&bb.order));
    });
}

/// The assignment relaxation never exceeds the optimal tour cost.
#[test]
fn hungarian_is_a_lower_bound() {
    run_cases("hungarian_is_a_lower_bound", 64, |rng| {
        let inst = random_instance(rng, 8);
        let lb = hungarian::lower_bound(&inst);
        let opt = held_karp::solve(&inst).cost;
        assert!(lb <= opt, "AP bound {lb} > optimum {opt}");
    });
}

/// Heuristics return valid tours and never beat the optimum.
#[test]
fn heuristics_are_feasible() {
    run_cases("heuristics_are_feasible", 64, |rng| {
        let inst = random_instance(rng, 9);
        let h = heuristics::construct(&inst);
        assert!(inst.is_valid_tour(&h.order));
        let opt = held_karp::solve(&inst).cost;
        assert!(h.cost >= opt);
    });
}

/// The local search returns valid tours whose cost is **never below the
/// exact optimum** — the cross-check oracle for the inexact backend.
#[test]
fn local_search_never_beats_the_exact_optimum() {
    run_cases("local_search_never_beats_the_exact_optimum", 48, |rng| {
        let inst = random_instance(rng, 10);
        let ls = local_search::solve(&inst);
        assert!(inst.is_valid_tour(&ls.order));
        assert_eq!(inst.cycle_cost(&ls.order), ls.cost);
        let opt = held_karp::solve(&inst).cost;
        assert!(
            ls.cost >= opt,
            "local search {0} below optimum {opt}",
            ls.cost
        );
    });
}

/// The local search never loses to the one-shot construction heuristics
/// it seeds from, and is deterministic per instance.
#[test]
fn local_search_dominates_construction_and_is_deterministic() {
    run_cases("local_search_dominates_construction", 32, |rng| {
        let inst = random_instance(rng, 14);
        let (a, stats_a) = local_search::solve_with_stats(&inst, &local_search::Config::default());
        let (b, stats_b) = local_search::solve_with_stats(&inst, &local_search::Config::default());
        assert_eq!(a, b, "same instance, same tour");
        assert_eq!(stats_a, stats_b);
        let h = heuristics::construct(&inst);
        assert!(a.cost <= h.cost);
    });
}

/// Every enumerated optimal tour really is optimal, and the plain solve
/// is among them cost-wise.
#[test]
fn all_optimal_enumeration_is_sound() {
    run_cases("all_optimal_enumeration_is_sound", 64, |rng| {
        let inst = random_instance(rng, 7);
        let opt = held_karp::solve(&inst).cost;
        let all = held_karp::solve_all(&inst, 256);
        assert!(!all.is_empty());
        for t in &all {
            assert_eq!(t.cost, opt);
            assert!(inst.is_valid_tour(&t.order));
        }
        // Enumerated tours are pairwise distinct.
        let mut orders: Vec<&Vec<usize>> = all.iter().map(|t| &t.order).collect();
        orders.sort();
        orders.dedup();
        assert_eq!(orders.len(), all.len());
    });
}

/// Adding a constant to every arc shifts the optimum by n·constant and
/// preserves an optimal order.
#[test]
fn optimal_order_invariant_under_cost_shift() {
    run_cases("optimal_order_invariant_under_cost_shift", 64, |rng| {
        let inst = random_instance(rng, 7);
        let shift = 1 + rng.next_u64() % 49;
        let base = held_karp::solve(&inst);
        let n = inst.len();
        let shifted_inst = AtspInstance::from_fn(n, |i, j| inst.cost(i, j) + shift);
        let shifted = held_karp::solve(&shifted_inst);
        assert_eq!(shifted.cost, base.cost + shift * n as u64);
    });
}
