//! Property tests for the ATSP solvers: exactness, agreement and
//! invariances across random instances.

use marchgen_atsp::{branch_bound, brute, held_karp, heuristics, hungarian, AtspInstance};
use proptest::prelude::*;

fn instance_strategy(max_n: usize) -> impl Strategy<Value = AtspInstance> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0u64..100, n * n).prop_map(move |costs| {
            AtspInstance::from_fn(n, |i, j| costs[i * n + j])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Held–Karp equals brute force on small instances.
    #[test]
    fn held_karp_is_exact(inst in instance_strategy(7)) {
        let hk = held_karp::solve(&inst);
        let bf = brute::solve(&inst);
        prop_assert_eq!(hk.cost, bf.cost);
        prop_assert!(inst.is_valid_tour(&hk.order));
        prop_assert_eq!(inst.cycle_cost(&hk.order), hk.cost);
    }

    /// Branch-and-bound equals Held–Karp on mid-size instances.
    #[test]
    fn branch_bound_is_exact(inst in instance_strategy(9)) {
        let bb = branch_bound::solve(&inst);
        let hk = held_karp::solve(&inst);
        prop_assert_eq!(bb.cost, hk.cost);
        prop_assert!(inst.is_valid_tour(&bb.order));
    }

    /// The assignment relaxation never exceeds the optimal tour cost.
    #[test]
    fn hungarian_is_a_lower_bound(inst in instance_strategy(8)) {
        let lb = hungarian::lower_bound(&inst);
        let opt = held_karp::solve(&inst).cost;
        prop_assert!(lb <= opt, "AP bound {lb} > optimum {opt}");
    }

    /// Heuristics return valid tours and never beat the optimum.
    #[test]
    fn heuristics_are_feasible(inst in instance_strategy(9)) {
        let h = heuristics::construct(&inst);
        prop_assert!(inst.is_valid_tour(&h.order));
        let opt = held_karp::solve(&inst).cost;
        prop_assert!(h.cost >= opt);
    }

    /// Every enumerated optimal tour really is optimal, and the plain
    /// solve is among them cost-wise.
    #[test]
    fn all_optimal_enumeration_is_sound(inst in instance_strategy(7)) {
        let opt = held_karp::solve(&inst).cost;
        let all = held_karp::solve_all(&inst, 256);
        prop_assert!(!all.is_empty());
        for t in &all {
            prop_assert_eq!(t.cost, opt);
            prop_assert!(inst.is_valid_tour(&t.order));
        }
        // Enumerated tours are pairwise distinct.
        let mut orders: Vec<&Vec<usize>> = all.iter().map(|t| &t.order).collect();
        orders.sort();
        orders.dedup();
        prop_assert_eq!(orders.len(), all.len());
    }

    /// Adding a constant to every arc shifts the optimum by n·constant
    /// and preserves an optimal order.
    #[test]
    fn optimal_order_invariant_under_cost_shift(
        inst in instance_strategy(7),
        shift in 1u64..50,
    ) {
        let base = held_karp::solve(&inst);
        let n = inst.len();
        let shifted_inst = AtspInstance::from_fn(n, |i, j| inst.cost(i, j) + shift);
        let shifted = held_karp::solve(&shifted_inst);
        prop_assert_eq!(shifted.cost, base.cost + shift * n as u64);
    }
}
