//! Brute-force ATSP by permutation enumeration — the test oracle for the
//! real solvers (and the embodiment of the paper's f.4.2 observation that
//! the GTS space has `V!` members).

use crate::instance::{AtspInstance, Tour};

/// Exhaustively finds one optimal tour.
///
/// # Panics
///
/// Panics if the instance has more than 10 nodes (the oracle is for
/// tests; `10! = 3.6M` permutations is the sensible ceiling).
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    assert!(instance.len() <= 10, "brute force is capped at 10 nodes");
    let mut best: Option<Tour> = None;
    let n = instance.len();
    let mut rest: Vec<usize> = (1..n).collect();
    permute(&mut rest, 0, &mut |perm| {
        let mut order = Vec::with_capacity(n);
        order.push(0);
        order.extend_from_slice(perm);
        let t = Tour::new(instance, order);
        if best.as_ref().is_none_or(|b| t.cost < b.cost) {
            best = Some(t);
        }
    });
    best.expect("instances are non-empty")
}

/// Number of distinct Hamiltonian cycles through `n` labelled nodes when
/// the start is fixed: `(n-1)!` — the paper's `#GTS = V!` counts directed
/// *sequences*, i.e. `V!` open orderings.
#[must_use]
pub fn tour_count(n: usize) -> u64 {
    if n <= 1 {
        return 1;
    }
    (1..n as u64).product()
}

/// Number of Global Test Sequences over `v` test patterns (paper f.4.2):
/// every permutation of the TPG nodes is a candidate GTS, so `v!`.
#[must_use]
pub fn gts_count(v: usize) -> u64 {
    (1..=v as u64).product()
}

fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_node_cycle() {
        let inst = AtspInstance::from_rows(vec![vec![0, 1, 9], vec![9, 0, 1], vec![1, 9, 0]]);
        let t = solve(&inst);
        assert_eq!(t.cost, 3);
        assert_eq!(t.order, vec![0, 1, 2]);
    }

    #[test]
    fn f42_gts_counts() {
        // Paper f.4.2: #GTS = V!.
        assert_eq!(gts_count(4), 24);
        assert_eq!(gts_count(6), 720);
        assert_eq!(gts_count(0), 1);
    }

    #[test]
    fn fixed_start_tour_counts() {
        assert_eq!(tour_count(4), 6);
        assert_eq!(tour_count(1), 1);
    }

    #[test]
    fn asymmetric_costs_matter() {
        // Cheap one way, expensive the other: brute force must pick the
        // cheap orientation.
        let inst = AtspInstance::from_rows(vec![
            vec![0, 1, 100, 1],
            vec![100, 0, 1, 100],
            vec![1, 100, 0, 1],
            vec![1, 1, 100, 0],
        ]);
        let t = solve(&inst);
        assert_eq!(t.cost, 4); // 0→1→2→3→0, each arc cost 1
        assert_eq!(t.order, vec![0, 1, 2, 3]);
    }
}
