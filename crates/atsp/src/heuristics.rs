//! Construction and improvement heuristics: nearest-neighbour and
//! greedy-edge tours, and an asymmetric-safe **Or-opt** local search
//! (segment relocation never reverses arc directions, so it is valid for
//! ATSP where classic 2-opt is not).
//!
//! Heuristic tours provide the branch-and-bound upper bound and serve as
//! the fallback for instances beyond the exact solvers' range.

use crate::instance::{AtspInstance, Tour, INF};

/// Nearest-neighbour construction from the given start node.
#[must_use]
pub fn nearest_neighbor(instance: &AtspInstance, start: usize) -> Tour {
    let n = instance.len();
    assert!(start < n, "start node {start} out of range");
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut cur = start;
    order.push(cur);
    visited[cur] = true;
    for _ in 1..n {
        let next = (0..n)
            .filter(|&j| !visited[j])
            .min_by_key(|&j| instance.cost(cur, j))
            .expect("unvisited node exists");
        order.push(next);
        visited[next] = true;
        cur = next;
    }
    Tour::new(instance, order)
}

/// Best nearest-neighbour tour over all starts.
#[must_use]
pub fn best_nearest_neighbor(instance: &AtspInstance) -> Tour {
    (0..instance.len())
        .map(|s| nearest_neighbor(instance, s))
        .min_by_key(|t| t.cost)
        .expect("instances are non-empty")
}

/// Greedy-edge construction: repeatedly commit the globally cheapest arc
/// that keeps out-degrees, in-degrees and acyclicity (until the final
/// closing arc) valid.
#[must_use]
pub fn greedy_edge(instance: &AtspInstance) -> Tour {
    let n = instance.len();
    if n == 1 {
        return Tour::new(instance, vec![0]);
    }
    let mut arcs: Vec<(u64, usize, usize)> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                arcs.push((instance.cost(i, j), i, j));
            }
        }
    }
    arcs.sort_unstable();
    let mut succ = vec![usize::MAX; n];
    let mut pred = vec![usize::MAX; n];
    // union-find over path components to refuse premature cycles
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut [usize], mut x: usize) -> usize {
        while comp[x] != x {
            comp[x] = comp[comp[x]];
            x = comp[x];
        }
        x
    }
    let mut picked = 0usize;
    for (_, i, j) in arcs {
        if picked == n - 1 {
            break;
        }
        if succ[i] != usize::MAX || pred[j] != usize::MAX {
            continue;
        }
        let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
        if ri == rj {
            continue; // would close a subtour early
        }
        succ[i] = j;
        pred[j] = i;
        comp[ri] = rj;
        picked += 1;
    }
    // close the single remaining path into a cycle
    let tail = (0..n)
        .find(|&i| succ[i] == usize::MAX)
        .expect("one open tail");
    let head = (0..n)
        .find(|&j| pred[j] == usize::MAX)
        .expect("one open head");
    succ[tail] = head;
    let mut order = Vec::with_capacity(n);
    let mut cur = 0usize;
    for _ in 0..n {
        order.push(cur);
        cur = succ[cur];
    }
    Tour::new(instance, order)
}

/// Or-opt improvement: relocate segments of length 1–3 (orientation
/// preserved) while any move improves the cycle cost. Returns the
/// improved tour; terminates at a local optimum.
#[must_use]
pub fn or_opt(instance: &AtspInstance, tour: &Tour) -> Tour {
    let n = instance.len();
    if n < 4 {
        return tour.clone();
    }
    let mut order = tour.order.clone();
    let mut improved = true;
    while improved {
        improved = false;
        'moves: for seg_len in 1..=3usize.min(n - 2) {
            for from in 0..n {
                // segment occupies positions from..from+seg_len (cyclic);
                // keep indices simple by rotating the segment start to 1.
                let mut work = order.clone();
                work.rotate_left(from);
                // segment = work[1..1+seg_len]
                if 1 + seg_len >= n {
                    continue;
                }
                let before_cost = instance.cycle_cost(&work);
                let segment: Vec<usize> = work[1..1 + seg_len].to_vec();
                let mut rest: Vec<usize> = Vec::with_capacity(n - seg_len);
                rest.push(work[0]);
                rest.extend_from_slice(&work[1 + seg_len..]);
                for insert_at in 1..rest.len() {
                    let mut cand: Vec<usize> = Vec::with_capacity(n);
                    cand.extend_from_slice(&rest[..insert_at]);
                    cand.extend_from_slice(&segment);
                    cand.extend_from_slice(&rest[insert_at..]);
                    if instance.cycle_cost(&cand) < before_cost {
                        order = cand;
                        improved = true;
                        continue 'moves;
                    }
                }
            }
        }
    }
    Tour::new(instance, order)
}

/// The full heuristic pipeline: nearest-neighbour and greedy-edge
/// construction, each polished with Or-opt, best result kept. Both
/// seeds are descended — the cheaper *construction* does not always
/// lead to the cheaper *local optimum*.
#[must_use]
pub fn construct(instance: &AtspInstance) -> Tour {
    let nn = or_opt(instance, &best_nearest_neighbor(instance));
    let ge = or_opt(instance, &greedy_edge(instance));
    if nn.cost <= ge.cost {
        nn
    } else {
        ge
    }
}

/// `true` when the tour uses no forbidden arc — heuristics on heavily
/// constrained instances may fail to find a finite tour even when one
/// exists, in which case an exact method must be used.
#[must_use]
pub fn is_finite(tour: &Tour) -> bool {
    tour.cost < INF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn random_instance(n: usize, seed: u64) -> AtspInstance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        AtspInstance::from_fn(n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        })
    }

    #[test]
    fn nn_produces_valid_tours() {
        for seed in 0..5 {
            let inst = random_instance(7, seed);
            let t = best_nearest_neighbor(&inst);
            assert!(inst.is_valid_tour(&t.order));
            assert_eq!(inst.cycle_cost(&t.order), t.cost);
        }
    }

    #[test]
    fn greedy_produces_valid_tours() {
        for seed in 0..5 {
            let inst = random_instance(8, seed + 50);
            let t = greedy_edge(&inst);
            assert!(inst.is_valid_tour(&t.order));
        }
    }

    #[test]
    fn or_opt_never_worsens() {
        for seed in 0..8 {
            let inst = random_instance(9, seed + 7);
            let nn = nearest_neighbor(&inst, 0);
            let improved = or_opt(&inst, &nn);
            assert!(improved.cost <= nn.cost);
            assert!(inst.is_valid_tour(&improved.order));
        }
    }

    #[test]
    fn construct_close_to_optimal_on_small_instances() {
        for seed in 0..10 {
            let inst = random_instance(7, seed + 13);
            let h = construct(&inst);
            let opt = brute::solve(&inst).cost;
            assert!(h.cost >= opt);
            // Or-opt over NN/greedy is empirically near-optimal at this
            // size; allow a generous 1.5x envelope to keep the test robust.
            assert!(
                h.cost <= opt.saturating_mul(3) / 2 + 5,
                "seed {seed}: heuristic {0} vs optimum {opt}",
                h.cost
            );
        }
    }

    #[test]
    fn tiny_instances() {
        let inst = random_instance(2, 3);
        assert!(inst.is_valid_tour(&construct(&inst).order));
        let inst = random_instance(3, 3);
        assert!(inst.is_valid_tour(&construct(&inst).order));
    }
}
