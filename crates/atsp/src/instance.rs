//! ATSP instances and tours.

use std::fmt;

/// Cost marking a forbidden arc. Large enough to dominate any real tour,
/// small enough that sums of `n` of them never overflow `u64`.
///
/// `INF` is a *threshold*, not just a sentinel: constructors clamp every
/// arc at it, so any cost `>= INF` means "forbidden". Together with
/// [`MAX_DIMENSION`] this makes cost accumulation overflow-free — the
/// worst possible cycle sums to `MAX_DIMENSION × INF ≤ u64::MAX` — so
/// the solvers can compare tour costs exactly instead of saturating
/// (saturated sums pin at the max and compare *equal*, which once let
/// the DP return a provably non-optimal tour on extreme-weight
/// instances without any error).
pub const INF: u64 = u64::MAX / 1024;

/// Largest accepted node count. `MAX_DIMENSION × INF` is the largest
/// cycle cost any instance can produce, and it still fits `u64` — the
/// explicit guard that keeps every cost accumulation in this crate
/// exact. Far beyond any Test Pattern Graph the generator builds.
pub const MAX_DIMENSION: usize = 1024;

// The overflow-freedom argument, checked at compile time: the most
// expensive cycle (every arc clamped at INF, MAX_DIMENSION nodes) fits.
const _: () = assert!((MAX_DIMENSION as u128) * (INF as u128) <= u64::MAX as u128);

/// An ATSP instance: a complete directed graph given by its cost matrix
/// (`cost[i][j]` = cost of arc `i → j`; diagonal entries are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtspInstance {
    n: usize,
    cost: Vec<u64>,
}

impl AtspInstance {
    /// Builds an instance from a square row-major matrix. Costs at or
    /// above [`INF`] are clamped to `INF` (forbidden).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, not square, or larger than
    /// [`MAX_DIMENSION`].
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<u64>>) -> AtspInstance {
        let n = rows.len();
        assert!(n > 0, "an ATSP instance needs at least one node");
        assert!(
            n <= MAX_DIMENSION,
            "ATSP instances are capped at {MAX_DIMENSION} nodes, got {n}"
        );
        let mut cost = Vec::with_capacity(n * n);
        for row in &rows {
            assert_eq!(row.len(), n, "cost matrix must be square");
            cost.extend(row.iter().map(|&c| c.min(INF)));
        }
        AtspInstance { n, cost }
    }

    /// Builds an instance of `n` nodes from a cost function. Costs at
    /// or above [`INF`] are clamped to `INF` (forbidden).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_DIMENSION`.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u64) -> AtspInstance {
        assert!(n > 0, "an ATSP instance needs at least one node");
        assert!(
            n <= MAX_DIMENSION,
            "ATSP instances are capped at {MAX_DIMENSION} nodes, got {n}"
        );
        let mut cost = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                cost.push(if i == j { INF } else { f(i, j).min(INF) });
            }
        }
        AtspInstance { n, cost }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the single-node instance.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // invariant: n > 0
    }

    /// Cost of arc `i → j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn cost(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.n && j < self.n, "arc ({i},{j}) out of range");
        self.cost[i * self.n + j]
    }

    /// Sets the cost of arc `i → j` (used by branch-and-bound nodes),
    /// clamped at [`INF`].
    pub fn set_cost(&mut self, i: usize, j: usize, c: u64) {
        assert!(i < self.n && j < self.n, "arc ({i},{j}) out of range");
        self.cost[i * self.n + j] = c.min(INF);
    }

    /// The cost of visiting `order` as a cycle (returning to the first
    /// node). Exact: arcs are clamped at [`INF`] and instances capped at
    /// [`MAX_DIMENSION`] nodes, so the widened accumulator always
    /// converts back losslessly — tours through forbidden arcs get
    /// costs `>= INF` that still compare correctly against each other.
    #[must_use]
    pub fn cycle_cost(&self, order: &[usize]) -> u64 {
        if order.len() <= 1 {
            return 0; // a single node is a zero-length cycle
        }
        let mut total = 0u128;
        for k in 0..order.len() {
            let from = order[k];
            let to = order[(k + 1) % order.len()];
            total += u128::from(self.cost(from, to));
        }
        u64::try_from(total).expect("MAX_DIMENSION * INF fits u64")
    }

    /// `true` when `order` is a permutation of `0..n`.
    #[must_use]
    pub fn is_valid_tour(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut seen = vec![false; self.n];
        for &v in order {
            if v >= self.n || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }
}

/// Checked addition of two path/arc costs. By the crate invariants
/// (arcs clamped at [`INF`], instances capped at [`MAX_DIMENSION`]) a
/// partial-path cost plus one arc can never overflow; this helper makes
/// that assumption *loud* instead of silently saturating — saturated
/// sums compare equal, which once let the exact solvers return a
/// provably non-optimal tour on extreme-weight instances without any
/// error.
///
/// # Panics
///
/// Panics on overflow (unreachable unless the invariants are broken).
#[must_use]
pub fn add_cost(a: u64, b: u64) -> u64 {
    a.checked_add(b).expect(
        "cost accumulation cannot overflow: arcs are clamped at INF \
         and instances capped at MAX_DIMENSION nodes",
    )
}

impl fmt::Display for AtspInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ATSP({} nodes)", self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    f.write_str(" ")?;
                }
                let c = self.cost(i, j);
                if c >= INF || i == j {
                    f.write_str("  ∞")?;
                } else {
                    write!(f, "{c:3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A Hamiltonian cycle with its cost. `order[0]` is always the lowest
/// possible start (solvers canonicalize rotation so tours compare equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tour {
    /// Visit order; a cycle (the last node returns to the first).
    pub order: Vec<usize>,
    /// Total cycle cost.
    pub cost: u64,
}

impl Tour {
    /// Builds a tour, computing its cost and canonicalizing the rotation
    /// so that node 0 comes first.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the instance's nodes.
    #[must_use]
    pub fn new(instance: &AtspInstance, order: Vec<usize>) -> Tour {
        assert!(
            instance.is_valid_tour(&order),
            "not a valid tour: {order:?}"
        );
        let cost = instance.cycle_cost(&order);
        let mut t = Tour { order, cost };
        t.canonicalize();
        t
    }

    fn canonicalize(&mut self) {
        if let Some(pos) = self.order.iter().position(|&v| v == 0) {
            self.order.rotate_left(pos);
        }
    }

    /// `true` when no forbidden arc is used.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.cost < INF
    }
}

impl fmt::Display for Tour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tour[")?;
        for (k, v) in self.order.iter().enumerate() {
            if k > 0 {
                f.write_str(" → ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "] cost {}", self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_blocks_diagonal() {
        let inst = AtspInstance::from_fn(3, |i, j| (i * 10 + j) as u64);
        assert_eq!(inst.cost(0, 0), INF);
        assert_eq!(inst.cost(1, 2), 12);
    }

    #[test]
    fn cycle_cost_wraps_around() {
        let inst = AtspInstance::from_rows(vec![vec![0, 1, 4], vec![2, 0, 1], vec![1, 7, 0]]);
        assert_eq!(inst.cycle_cost(&[0, 1, 2]), 1 + 1 + 1);
        assert_eq!(inst.cycle_cost(&[0, 2, 1]), 4 + 7 + 2);
    }

    #[test]
    fn tour_canonicalizes_rotation() {
        let inst = AtspInstance::from_fn(4, |_, _| 1);
        let a = Tour::new(&inst, vec![2, 3, 0, 1]);
        let b = Tour::new(&inst, vec![0, 1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn tour_validity() {
        let inst = AtspInstance::from_fn(3, |_, _| 1);
        assert!(inst.is_valid_tour(&[0, 2, 1]));
        assert!(!inst.is_valid_tour(&[0, 1]));
        assert!(!inst.is_valid_tour(&[0, 1, 1]));
        assert!(!inst.is_valid_tour(&[0, 1, 5]));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        let _ = AtspInstance::from_rows(vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn saturating_inf_sums_do_not_overflow() {
        let inst = AtspInstance::from_fn(4, |_, _| INF);
        let c = inst.cycle_cost(&[0, 1, 2, 3]);
        assert!(c >= INF);
    }

    /// Regression: costs near `u64::MAX` used to survive into the cost
    /// matrix, where saturating sums pinned every tour at the max and
    /// compared equal. They now clamp to `INF` at construction, so
    /// cycle costs stay exact and tours with *different* numbers of
    /// extreme arcs stay distinguishable.
    #[test]
    fn near_max_weights_clamp_and_stay_comparable() {
        let huge = u64::MAX / 2; // above INF, below u64::MAX
        let inst =
            AtspInstance::from_rows(vec![vec![0, huge, 1], vec![1, 0, huge], vec![huge, 1, 0]]);
        assert_eq!(inst.cost(0, 1), INF, "extreme weights clamp to INF");
        // One direction uses three clamped arcs, the other none: before
        // the clamp both directions saturated to u64::MAX and tied.
        let all_huge = inst.cycle_cost(&[0, 1, 2]);
        let all_small = inst.cycle_cost(&[0, 2, 1]);
        assert_eq!(all_huge, 3 * INF);
        assert_eq!(all_small, 3);
        assert!(all_small < all_huge);
    }

    #[test]
    fn set_cost_clamps_at_inf() {
        let mut inst = AtspInstance::from_fn(3, |_, _| 1);
        inst.set_cost(0, 1, u64::MAX);
        assert_eq!(inst.cost(0, 1), INF);
    }

    #[test]
    fn add_cost_is_exact_in_range() {
        assert_eq!(add_cost(3, 4), 7);
        assert_eq!(add_cost(INF, INF), 2 * INF);
    }

    #[test]
    #[should_panic(expected = "capped at")]
    fn rejects_oversized_instances() {
        let _ = AtspInstance::from_fn(MAX_DIMENSION + 1, |_, _| 1);
    }
}
