//! ATSP instances and tours.

use std::fmt;

/// Cost marking a forbidden arc. Large enough to dominate any real tour,
/// small enough that sums of `n` of them never overflow `u64`.
pub const INF: u64 = u64::MAX / 1024;

/// An ATSP instance: a complete directed graph given by its cost matrix
/// (`cost[i][j]` = cost of arc `i → j`; diagonal entries are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtspInstance {
    n: usize,
    cost: Vec<u64>,
}

impl AtspInstance {
    /// Builds an instance from a square row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not square.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<u64>>) -> AtspInstance {
        let n = rows.len();
        assert!(n > 0, "an ATSP instance needs at least one node");
        let mut cost = Vec::with_capacity(n * n);
        for row in &rows {
            assert_eq!(row.len(), n, "cost matrix must be square");
            cost.extend_from_slice(row);
        }
        AtspInstance { n, cost }
    }

    /// Builds an instance of `n` nodes from a cost function.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u64) -> AtspInstance {
        assert!(n > 0, "an ATSP instance needs at least one node");
        let mut cost = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                cost.push(if i == j { INF } else { f(i, j) });
            }
        }
        AtspInstance { n, cost }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the single-node instance.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // invariant: n > 0
    }

    /// Cost of arc `i → j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn cost(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.n && j < self.n, "arc ({i},{j}) out of range");
        self.cost[i * self.n + j]
    }

    /// Sets the cost of arc `i → j` (used by branch-and-bound nodes).
    pub fn set_cost(&mut self, i: usize, j: usize, c: u64) {
        assert!(i < self.n && j < self.n, "arc ({i},{j}) out of range");
        self.cost[i * self.n + j] = c;
    }

    /// The cost of visiting `order` as a cycle (returning to the first
    /// node), saturating on forbidden arcs.
    #[must_use]
    pub fn cycle_cost(&self, order: &[usize]) -> u64 {
        if order.len() <= 1 {
            return 0; // a single node is a zero-length cycle
        }
        let mut total = 0u64;
        for k in 0..order.len() {
            let from = order[k];
            let to = order[(k + 1) % order.len()];
            total = total.saturating_add(self.cost(from, to));
        }
        total
    }

    /// `true` when `order` is a permutation of `0..n`.
    #[must_use]
    pub fn is_valid_tour(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut seen = vec![false; self.n];
        for &v in order {
            if v >= self.n || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }
}

impl fmt::Display for AtspInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ATSP({} nodes)", self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    f.write_str(" ")?;
                }
                let c = self.cost(i, j);
                if c >= INF || i == j {
                    f.write_str("  ∞")?;
                } else {
                    write!(f, "{c:3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A Hamiltonian cycle with its cost. `order[0]` is always the lowest
/// possible start (solvers canonicalize rotation so tours compare equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tour {
    /// Visit order; a cycle (the last node returns to the first).
    pub order: Vec<usize>,
    /// Total cycle cost.
    pub cost: u64,
}

impl Tour {
    /// Builds a tour, computing its cost and canonicalizing the rotation
    /// so that node 0 comes first.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the instance's nodes.
    #[must_use]
    pub fn new(instance: &AtspInstance, order: Vec<usize>) -> Tour {
        assert!(
            instance.is_valid_tour(&order),
            "not a valid tour: {order:?}"
        );
        let cost = instance.cycle_cost(&order);
        let mut t = Tour { order, cost };
        t.canonicalize();
        t
    }

    fn canonicalize(&mut self) {
        if let Some(pos) = self.order.iter().position(|&v| v == 0) {
            self.order.rotate_left(pos);
        }
    }

    /// `true` when no forbidden arc is used.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.cost < INF
    }
}

impl fmt::Display for Tour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tour[")?;
        for (k, v) in self.order.iter().enumerate() {
            if k > 0 {
                f.write_str(" → ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "] cost {}", self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_blocks_diagonal() {
        let inst = AtspInstance::from_fn(3, |i, j| (i * 10 + j) as u64);
        assert_eq!(inst.cost(0, 0), INF);
        assert_eq!(inst.cost(1, 2), 12);
    }

    #[test]
    fn cycle_cost_wraps_around() {
        let inst = AtspInstance::from_rows(vec![vec![0, 1, 4], vec![2, 0, 1], vec![1, 7, 0]]);
        assert_eq!(inst.cycle_cost(&[0, 1, 2]), 1 + 1 + 1);
        assert_eq!(inst.cycle_cost(&[0, 2, 1]), 4 + 7 + 2);
    }

    #[test]
    fn tour_canonicalizes_rotation() {
        let inst = AtspInstance::from_fn(4, |_, _| 1);
        let a = Tour::new(&inst, vec![2, 3, 0, 1]);
        let b = Tour::new(&inst, vec![0, 1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn tour_validity() {
        let inst = AtspInstance::from_fn(3, |_, _| 1);
        assert!(inst.is_valid_tour(&[0, 2, 1]));
        assert!(!inst.is_valid_tour(&[0, 1]));
        assert!(!inst.is_valid_tour(&[0, 1, 1]));
        assert!(!inst.is_valid_tour(&[0, 1, 5]));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        let _ = AtspInstance::from_rows(vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn saturating_inf_sums_do_not_overflow() {
        let inst = AtspInstance::from_fn(4, |_, _| INF);
        let c = inst.cycle_cost(&[0, 1, 2, 3]);
        assert!(c >= INF);
    }
}
