//! A Lin–Kernighan-style **local search** for the ATSP — the inexact
//! backend for instances beyond the exact solvers' range (large TPGs
//! from big decoupled fault lists), where branch-and-bound blows up and
//! the one-shot construction heuristics leave real cost on the table.
//!
//! The classic LKH ingredients, adapted for *asymmetric* costs:
//!
//! * **seeding** — best-of nearest-neighbour (several starts) and
//!   greedy-edge construction,
//! * **candidate neighbour lists** — each node only considers its `k`
//!   cheapest successors as move partners, turning each improvement
//!   sweep from `O(n²)` into `O(k·n)`,
//! * **Or-opt moves** — relocate segments of length 1–3 with
//!   orientation preserved (always valid under asymmetry, `O(1)` delta),
//! * **2-opt moves** — reconnect two arcs and *reverse* the enclosed
//!   segment; under asymmetric costs the reversal re-prices every inner
//!   arc, so the delta is computed exactly over the segment,
//! * **don't-look bits** — nodes whose neighbourhood was exhausted are
//!   skipped until a nearby move reactivates them,
//! * **seeded restarts** — deterministic double-bridge perturbations of
//!   the incumbent, each followed by a full improvement pass; the best
//!   tour over all restarts wins.
//!
//! Everything is **deterministic**: the restart RNG is seeded from a
//! fixed constant (configurable), ties break on node index, and no
//! wall-clock or thread state is consulted — the same instance always
//! yields the same tour, which the request layer relies on for
//! byte-identical outcomes across thread counts.

use crate::heuristics;
use crate::hungarian;
use crate::instance::{AtspInstance, Tour, INF};
use crate::solver::SolveStats;

/// Tuning knobs of the local search. [`Config::default`] is what
/// [`solve`] and the registry's `local-search` strategy use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Candidate-list size: how many cheapest successors each node
    /// offers as move partners.
    pub neighbors: usize,
    /// Double-bridge perturbation rounds after the initial descents.
    pub restarts: usize,
    /// Independent nearest-neighbour starting points, each fully
    /// descended before the perturbation phase (capped at `n`).
    pub starts: usize,
    /// Base seed of the deterministic restart RNG.
    pub seed: u64,
    /// Longest segment a 2-opt reversal may re-price (bounds the cost
    /// of a single move evaluation on large instances).
    pub max_reversal: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            neighbors: 10,
            restarts: 16,
            starts: 8,
            seed: 0x6d61_7263_6867_656e, // "marchgen"
            max_reversal: 24,
        }
    }
}

/// xorshift64* — the same tiny deterministic generator the testkit
/// uses, inlined so the crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Solves with the default [`Config`].
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    solve_with_stats(instance, &Config::default()).0
}

/// Solves with an explicit configuration, returning the tour and the
/// iteration/restart statistics the request layer surfaces in its
/// diagnostics.
#[must_use]
pub fn solve_with_stats(instance: &AtspInstance, config: &Config) -> (Tour, SolveStats) {
    let n = instance.len();
    if n <= 3 {
        // Up to three nodes there is (at most) one cyclic order per
        // orientation; the construction heuristics already try both.
        return (heuristics::construct(instance), SolveStats::default());
    }
    let candidates = candidate_lists(instance, config.neighbors);
    let mut stats = SolveStats::default();
    let better = |t: &Tour, incumbent: &Tour| {
        t.cost < incumbent.cost || (t.cost == incumbent.cost && t.order < incumbent.order)
    };

    // Multi-start phase: the assignment-problem patching construction
    // (Karp) — on asymmetric instances the AP relaxation is tight, so
    // its patched tour starts far below any greedy construction's
    // local optimum — plus the combined construction heuristic and
    // nearest-neighbour tours from several spread-out starting nodes,
    // each fully descended. Independent basins beat perturbing one.
    let seed = heuristics::construct(instance);
    let mut best = descend(
        instance,
        seed.order.clone(),
        &candidates,
        config,
        &mut stats,
    );
    if let Some(patched) = ap_patching_order(instance) {
        let tour = descend(instance, patched, &candidates, config, &mut stats);
        if better(&tour, &best) {
            best = tour;
        }
    }
    let starts = config.starts.min(n);
    for s in 0..starts {
        let start = s * n / starts.max(1); // evenly spread, deterministic
        let nn = heuristics::nearest_neighbor(instance, start);
        let tour = descend(instance, nn.order.clone(), &candidates, config, &mut stats);
        if better(&tour, &best) {
            best = tour;
        }
    }

    // Deterministic restart rounds, alternating two styles:
    // even rounds *diversify* — descend a fresh randomized-greedy
    // construction (GRASP-style: each step picks among the few cheapest
    // unvisited successors), sampling far-apart basins the incumbent's
    // neighbourhood cannot reach; odd rounds *intensify* — double-bridge
    // kick the walking point and descend, accepting whenever no ground
    // is lost so plateaus can be tunnelled.
    let mut rng = Rng::new(config.seed);
    let mut current = best.clone();
    let mut rejected = 0usize;
    for round in 0..config.restarts {
        stats.restarts += 1;
        let start = if round % 2 == 0 {
            randomized_greedy(instance, &mut rng)
        } else {
            double_bridge(&current.order, &mut rng)
        };
        let tour = descend(instance, start, &candidates, config, &mut stats);
        if better(&tour, &best) {
            best = tour.clone();
        }
        if tour.cost <= current.cost {
            current = tour;
            rejected = 0;
        } else {
            rejected += 1;
            if rejected >= 3 {
                current = best.clone();
                rejected = 0;
            }
        }
    }
    (best, stats)
}

/// Karp's assignment-patching construction: solve the AP relaxation
/// (each node gets its cheapest feasible successor under the
/// Hungarian potentials) and merge the resulting subtours pairwise,
/// always applying the cheapest 2-arc patch, until one Hamiltonian
/// cycle remains. On asymmetric instances the AP bound is tight, so
/// this lands within a few percent of the optimum — a far better
/// local-search seed than any greedy construction. `None` when the AP
/// is infeasible (no finite assignment).
fn ap_patching_order(instance: &AtspInstance) -> Option<Vec<usize>> {
    let n = instance.len();
    let assignment = hungarian::solve(instance);
    if assignment.cost >= INF {
        return None;
    }
    let mut cycles = assignment.cycles();
    let cost = |i: usize, j: usize| i128::from(instance.cost(i, j));
    while cycles.len() > 1 {
        // Cheapest patch over all cycle pairs and arc choices: remove
        // a→succ(a) from one cycle and b→succ(b) from the other, add
        // a→succ(b) and b→succ(a). Both cycles keep their orientation.
        let mut best_patch: Option<(i128, usize, usize, usize, usize)> = None;
        for ci in 0..cycles.len() {
            for cj in ci + 1..cycles.len() {
                for (ai, &a) in cycles[ci].iter().enumerate() {
                    let sa = cycles[ci][(ai + 1) % cycles[ci].len()];
                    for (bi, &b) in cycles[cj].iter().enumerate() {
                        let sb = cycles[cj][(bi + 1) % cycles[cj].len()];
                        let delta = cost(a, sb) + cost(b, sa) - cost(a, sa) - cost(b, sb);
                        if best_patch.is_none_or(|(d, ..)| delta < d) {
                            best_patch = Some((delta, ci, cj, ai, bi));
                        }
                    }
                }
            }
        }
        let (_, ci, cj, ai, bi) = best_patch.expect("at least two cycles to patch");
        // Splice cycle cj into cycle ci right after position ai,
        // starting from bi's successor (removing a→sa and b→sb,
        // adding a→sb and b→sa).
        let cycle_j = cycles.remove(cj);
        let target = &mut cycles[ci];
        let mut spliced = Vec::with_capacity(target.len() + cycle_j.len());
        spliced.extend_from_slice(&target[..=ai]);
        for k in 1..=cycle_j.len() {
            spliced.push(cycle_j[(bi + k) % cycle_j.len()]);
        }
        spliced.extend_from_slice(&target[ai + 1..]);
        *target = spliced;
    }
    let order = cycles.pop().expect("one cycle remains");
    debug_assert_eq!(order.len(), n);
    Some(order)
}

/// GRASP-style randomized nearest-neighbour construction: every step
/// extends to one of the three cheapest unvisited successors, chosen by
/// the (deterministic) restart RNG. Distant basins get sampled that a
/// perturbation of the incumbent never reaches.
fn randomized_greedy(instance: &AtspInstance, rng: &mut Rng) -> Vec<usize> {
    let n = instance.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut cur = rng.below(n);
    order.push(cur);
    visited[cur] = true;
    for _ in 1..n {
        // Top-3 unvisited successors by (cost, index) in one O(n)
        // scan — the same deterministic, ascending choice set a full
        // sort would produce, without O(n log n) per construction step.
        let mut top: [Option<usize>; 3] = [None; 3];
        for (j, &seen) in visited.iter().enumerate() {
            if seen {
                continue;
            }
            let mut cand = j;
            for slot in &mut top {
                match *slot {
                    Some(held)
                        if (instance.cost(cur, held), held) <= (instance.cost(cur, cand), cand) => {
                    }
                    _ => {
                        let displaced = slot.replace(cand);
                        match displaced {
                            Some(down) => cand = down,
                            None => break,
                        }
                    }
                }
            }
        }
        let choices: Vec<usize> = top.iter().flatten().copied().collect();
        cur = choices[rng.below(choices.len())];
        order.push(cur);
        visited[cur] = true;
    }
    order
}

/// Per-node candidate move partners: the `k` cheapest successors (by
/// `cost(i, j)`) and the `k` cheapest predecessors (by `cost(j, i)`),
/// ties broken by index. Successor lists guide moves that create an
/// `i → j` arc; predecessor lists guide moves that create a `j → i`
/// arc — under asymmetric costs the two are genuinely different sets.
struct Candidates {
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

fn candidate_lists(instance: &AtspInstance, k: usize) -> Candidates {
    let n = instance.len();
    let top = |key: &dyn Fn(usize, usize) -> u64| -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut partners: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                partners.sort_by_key(|&j| (key(i, j), j));
                partners.truncate(k.max(1));
                partners
            })
            .collect()
    };
    Candidates {
        succ: top(&|i, j| instance.cost(i, j)),
        pred: top(&|i, j| instance.cost(j, i)),
    }
}

/// One full local-search descent from `order`: Or-opt and 2-opt moves
/// guided by the candidate lists, with don't-look bits, until no node
/// offers an improving move.
fn descend(
    instance: &AtspInstance,
    order: Vec<usize>,
    candidates: &Candidates,
    config: &Config,
    stats: &mut SolveStats,
) -> Tour {
    let n = instance.len();
    let mut state = State::new(order);
    let mut dont_look = vec![false; n];
    let mut queue: Vec<usize> = (0..n).collect();
    while let Some(a) = queue.pop() {
        if dont_look[a] {
            continue;
        }
        match improve_around(instance, &mut state, a, candidates, config) {
            Some(touched) => {
                stats.iterations += 1;
                for node in touched {
                    if dont_look[node] {
                        dont_look[node] = false;
                        queue.push(node);
                    }
                }
                queue.push(a);
            }
            None => dont_look[a] = true,
        }
    }
    Tour::new(instance, state.order)
}

/// Tour state with a position index for `O(1)` node→slot lookups.
struct State {
    order: Vec<usize>,
    pos: Vec<usize>,
}

impl State {
    fn new(order: Vec<usize>) -> State {
        let mut pos = vec![0usize; order.len()];
        for (k, &v) in order.iter().enumerate() {
            pos[v] = k;
        }
        State { order, pos }
    }

    fn reindex(&mut self) {
        for (k, &v) in self.order.iter().enumerate() {
            self.pos[v] = k;
        }
    }

    /// Re-derives `pos` for a bounded cyclic slot range only — the
    /// moves that touch O(1) or O(segment) slots must not pay a full
    /// O(n) rescan per application.
    fn reindex_range(&mut self, start: usize, len: usize) {
        let n = self.order.len();
        for k in 0..len {
            let slot = (start + k) % n;
            self.pos[self.order[slot]] = slot;
        }
    }
}

/// Tries every candidate-guided move around node `a`; applies the first
/// improving one and returns the nodes whose neighbourhood changed.
fn improve_around(
    instance: &AtspInstance,
    state: &mut State,
    a: usize,
    candidates: &Candidates,
    config: &Config,
) -> Option<Vec<usize>> {
    let n = state.order.len();
    let at = |k: usize| state.order[k % n];
    let cost = |i: usize, j: usize| u128::from(instance.cost(i, j));
    let pa = state.pos[a];

    // ---- Or-opt: relocate the segment starting at `a` (len 1..=3) ----
    for seg_len in 1..=3usize.min(n - 2) {
        let seg_end = at(pa + seg_len - 1); // last node of the segment
        let prev = at(pa + n - 1); // node before the segment
        let next = at(pa + seg_len); // node after the segment
                                     // Insert the segment after a candidate successor-partner `c`:
                                     // prev→next closes the gap, c→a and seg_end→d open the slot.
        for &c in &candidates.pred[a] {
            // `c` must lie outside the segment and not be `prev`
            // (reinserting in place is a no-op).
            let pc = state.pos[c];
            let offset = (pc + n - pa) % n;
            if offset < seg_len || c == prev {
                continue;
            }
            let d = at(pc + 1);
            let added = cost(prev, next) + cost(c, a) + cost(seg_end, d);
            let removed_here = cost(prev, a) + cost(seg_end, next) + cost(c, d);
            if added < removed_here {
                apply_or_opt(state, pa, seg_len, pc);
                return Some(vec![a, prev, next, c, d, seg_end]);
            }
        }
        // Same relocation guided from the other end: candidate
        // successors `d` of the segment tail (the added seg_end→d arc).
        for &d in &candidates.succ[seg_end] {
            let pd = state.pos[d];
            let offset = (pd + n - pa) % n;
            // `d`'s predecessor `c` must lie outside the segment, and
            // inserting before `next` is a no-op.
            if offset <= seg_len || d == next {
                continue;
            }
            let pc = pd + n - 1;
            let c = at(pc);
            let added = cost(prev, next) + cost(c, a) + cost(seg_end, d);
            let removed_here = cost(prev, a) + cost(seg_end, next) + cost(c, d);
            if added < removed_here {
                apply_or_opt(state, pa, seg_len, pc % n);
                return Some(vec![a, prev, next, c, d, seg_end]);
            }
        }
    }

    // ---- 3-opt block swap: exchange the two adjacent blocks right
    // after `a` (orientation preserved — the asymmetric workhorse).
    // Tour ... a [B] [C] d ... becomes ... a [C] [B] d ...; all three
    // reconnection arcs price in O(1).
    for l1 in 1..=3usize {
        for l2 in 1..=3usize {
            if l1 + l2 + 2 > n {
                continue;
            }
            let b_first = at(pa + 1);
            let b_last = at(pa + l1);
            let c_first = at(pa + l1 + 1);
            let c_last = at(pa + l1 + l2);
            let d = at(pa + l1 + l2 + 1);
            let removed = cost(a, b_first) + cost(b_last, c_first) + cost(c_last, d);
            let added = cost(a, c_first) + cost(c_last, b_first) + cost(b_last, d);
            if added < removed {
                apply_block_swap(state, pa, l1, l2);
                return Some(vec![a, b_first, b_last, c_first, c_last, d]);
            }
        }
    }

    // ---- node swap: exchange `a` with a distant node `v` (orientation
    // preserved, O(1) delta). Guided by the predecessor candidates of
    // `a`'s current neighbourhood: `v` lands in front of `next(a)`.
    let prev = at(pa + n - 1);
    let next = at(pa + 1);
    for &v in &candidates.succ[prev] {
        let pv = state.pos[v];
        let gap = (pv + n - pa) % n;
        if gap < 2 || gap + 1 >= n {
            continue; // adjacent swaps are 2-opt/or-opt territory
        }
        let prev_v = at(pv + n - 1);
        let next_v = at(pv + 1);
        let removed = cost(prev, a) + cost(a, next) + cost(prev_v, v) + cost(v, next_v);
        let added = cost(prev, v) + cost(v, next) + cost(prev_v, a) + cost(a, next_v);
        if added < removed {
            state.order.swap(pa, pv);
            state.pos[a] = pv;
            state.pos[v] = pa;
            return Some(vec![a, v, prev, next, prev_v, next_v]);
        }
    }

    // ---- 2-opt: reconnect (a → succ a) and (b → succ b), reversing
    // the enclosed segment; asymmetric costs re-price the reversal.
    let sa = at(pa + 1);
    for &b in &candidates.succ[a] {
        // Move replaces arcs a→sa and b→sb with a→b and sa→sb, and
        // reverses sa..b. `b` must sit strictly after `sa` on the tour.
        let pb = state.pos[b];
        let gap = (pb + n - pa) % n;
        if gap < 2 || gap + 1 >= n {
            continue; // adjacent or wraps the whole tour
        }
        let inner = gap - 1; // arcs inside sa..b
        if inner > config.max_reversal {
            continue;
        }
        let sb = at(pb + 1);
        let mut removed = cost(a, sa) + cost(b, sb);
        let mut added = cost(a, b) + cost(sa, sb);
        // Re-price the reversed inner path sa → … → b as b → … → sa.
        for k in 0..inner {
            let u = at(pa + 1 + k);
            let v = at(pa + 2 + k);
            removed += cost(u, v);
            added += cost(v, u);
        }
        if added < removed {
            // Under asymmetric costs the reversal re-prices every arc
            // incident to the segment's *inner* nodes too, so all of
            // them must wake from their don't-look state — not just
            // the four reconnection endpoints.
            let touched: Vec<usize> = (0..=inner + 1).map(|k| at(pa + 1 + k)).chain([a]).collect();
            apply_two_opt(state, pa, pb);
            return Some(touched);
        }
    }
    None
}

/// Relocates the cyclic segment `[pa, pa+len)` to sit right after
/// position `pc` (orientation preserved).
fn apply_or_opt(state: &mut State, pa: usize, len: usize, pc: usize) {
    let n = state.order.len();
    let segment: Vec<usize> = (0..len).map(|k| state.order[(pa + k) % n]).collect();
    let anchor = state.order[pc % n]; // survives the removal below
    let keep: Vec<usize> = (0..n)
        .map(|k| state.order[(pa + len + k) % n])
        .take(n - len)
        .collect();
    let mut rebuilt = Vec::with_capacity(n);
    for v in keep {
        rebuilt.push(v);
        if v == anchor {
            rebuilt.extend_from_slice(&segment);
        }
    }
    debug_assert_eq!(rebuilt.len(), n);
    state.order = rebuilt;
    state.reindex();
}

/// Swaps the adjacent cyclic blocks `[pa+1, pa+l1]` and
/// `[pa+l1+1, pa+l1+l2]` (both keep their internal order).
fn apply_block_swap(state: &mut State, pa: usize, l1: usize, l2: usize) {
    let n = state.order.len();
    let block_b: Vec<usize> = (1..=l1).map(|k| state.order[(pa + k) % n]).collect();
    let block_c: Vec<usize> = (l1 + 1..=l1 + l2)
        .map(|k| state.order[(pa + k) % n])
        .collect();
    for (k, &v) in block_c.iter().chain(block_b.iter()).enumerate() {
        let slot = (pa + 1 + k) % n;
        state.order[slot] = v;
    }
    state.reindex_range(pa + 1, l1 + l2);
}

/// Reverses the cyclic segment strictly between positions `pa` and
/// `pb+1` (i.e. `succ(pa) ..= pb`).
fn apply_two_opt(state: &mut State, pa: usize, pb: usize) {
    let n = state.order.len();
    let len = (pb + n - pa) % n; // nodes in succ(pa)..=pb
    let mut segment: Vec<usize> = (1..=len).map(|k| state.order[(pa + k) % n]).collect();
    segment.reverse();
    for (k, v) in segment.into_iter().enumerate() {
        let slot = (pa + 1 + k) % n;
        state.order[slot] = v;
    }
    state.reindex_range(pa + 1, len);
}

/// The classic double-bridge 4-opt perturbation: cut the tour into four
/// pieces A|B|C|D and reassemble as A|C|B|D. Orientation of every piece
/// is preserved, so it is asymmetric-safe.
fn double_bridge(order: &[usize], rng: &mut Rng) -> Vec<usize> {
    let n = order.len();
    if n < 8 {
        // Too small to cut into four meaningful pieces; rotate instead
        // (Tour::new canonicalizes, but the descent sees fresh moves).
        let mut out = order.to_vec();
        out.rotate_left(1 + rng.below(n - 1));
        return out;
    }
    let mut cuts = [
        1 + rng.below(n - 3),
        1 + rng.below(n - 3),
        1 + rng.below(n - 3),
    ];
    cuts.sort_unstable();
    let (p, q, r) = (cuts[0], cuts[1], cuts[2]);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&order[..p]);
    out.extend_from_slice(&order[q..r]);
    out.extend_from_slice(&order[p..q]);
    out.extend_from_slice(&order[r..]);
    out
}

/// `true` when the tour avoids every forbidden arc — the shared
/// predicate, re-exported here for symmetry with [`heuristics`].
pub use crate::heuristics::is_finite;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, held_karp};

    fn random_instance(n: usize, seed: u64) -> AtspInstance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        AtspInstance::from_fn(n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        })
    }

    #[test]
    fn produces_valid_tours() {
        for n in [2usize, 3, 4, 7, 11, 16, 25] {
            for seed in 0..4 {
                let inst = random_instance(n, seed * 13 + n as u64);
                let (t, _) = solve_with_stats(&inst, &Config::default());
                assert!(inst.is_valid_tour(&t.order), "n={n} seed={seed}");
                assert_eq!(inst.cycle_cost(&t.order), t.cost);
            }
        }
    }

    #[test]
    fn never_beats_and_usually_matches_the_exact_optimum() {
        let mut exact_hits = 0usize;
        let mut cases = 0usize;
        for n in 4..=9 {
            for seed in 0..6 {
                let inst = random_instance(n, seed * 31 + n as u64);
                let ls = solve(&inst);
                let opt = brute::solve(&inst).cost;
                assert!(ls.cost >= opt, "n={n} seed={seed}: {} < {opt}", ls.cost);
                cases += 1;
                if ls.cost == opt {
                    exact_hits += 1;
                }
            }
        }
        // The restarted search should be exact on almost all of these
        // tiny instances; demand a high hit rate so a broken move
        // generator cannot hide behind the `>=` bound.
        assert!(
            exact_hits * 10 >= cases * 9,
            "only {exact_hits}/{cases} exact"
        );
    }

    #[test]
    fn is_deterministic() {
        for seed in 0..4 {
            let inst = random_instance(13, seed + 400);
            let (a, sa) = solve_with_stats(&inst, &Config::default());
            let (b, sb) = solve_with_stats(&inst, &Config::default());
            assert_eq!(a, b);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn never_worse_than_the_construction_heuristics() {
        for seed in 0..6 {
            let inst = random_instance(18, seed + 77);
            let ls = solve(&inst);
            let h = heuristics::construct(&inst);
            assert!(ls.cost <= h.cost, "seed {seed}: {} > {}", ls.cost, h.cost);
        }
    }

    #[test]
    fn matches_held_karp_on_mid_size_instances() {
        let mut exact_hits = 0usize;
        for seed in 0..6 {
            let inst = random_instance(12, seed + 900);
            let ls = solve(&inst);
            let opt = held_karp::solve(&inst).cost;
            assert!(ls.cost >= opt);
            if ls.cost == opt {
                exact_hits += 1;
            }
        }
        assert!(exact_hits >= 5, "only {exact_hits}/6 exact at n=12");
    }

    #[test]
    fn stats_report_work() {
        let inst = random_instance(14, 5);
        let (_, stats) = solve_with_stats(&inst, &Config::default());
        assert_eq!(stats.restarts, Config::default().restarts as u64);
        // A random 14-node instance always admits at least one
        // improving move over the construction seed.
        assert!(stats.iterations > 0);
    }

    #[test]
    fn respects_forbidden_arcs_when_a_finite_tour_exists() {
        // Ring instance: only i→i+1 is allowed.
        let n = 9;
        let inst = AtspInstance::from_fn(n, |i, j| if (i + 1) % n == j { 1 } else { INF });
        let t = solve(&inst);
        assert!(is_finite(&t), "the only finite tour must be found");
        assert_eq!(t.cost, n as u64);
    }

    #[test]
    fn tiny_instances() {
        for n in 1..=3 {
            let inst = AtspInstance::from_fn(n.max(1), |_, _| 2);
            let t = solve(&inst);
            assert!(inst.is_valid_tour(&t.order));
        }
    }
}
