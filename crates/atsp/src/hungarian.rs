//! The Hungarian algorithm (shortest-augmenting-path formulation,
//! `O(n³)`) for the linear **assignment problem** — the relaxation at the
//! heart of the Carpaneto–Dell'Amico–Toth ATSP branch-and-bound the paper
//! uses (reference \[12\]).
//!
//! Relaxing the "single cycle" constraint of the ATSP leaves exactly the
//! AP: choose one outgoing arc per node, one incoming arc per node, at
//! minimum total cost. The AP optimum is therefore a lower bound on the
//! ATSP optimum, and when its permutation happens to form one cycle it is
//! already the optimal tour.

use crate::instance::{add_cost, AtspInstance, INF};

/// An assignment-problem solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `to[i]` = column assigned to row `i` (the successor of node `i`).
    pub to: Vec<usize>,
    /// Total assignment cost; `>= INF` when no finite assignment exists.
    pub cost: u64,
}

impl Assignment {
    /// Decomposes the assignment permutation into its cycles, each
    /// returned in traversal order. A single cycle of length `n` means
    /// the AP solution is a Hamiltonian tour.
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.to.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut v = start;
            while !seen[v] {
                seen[v] = true;
                cycle.push(v);
                v = self.to[v];
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// `true` when the assignment is one Hamiltonian cycle.
    #[must_use]
    pub fn is_single_cycle(&self) -> bool {
        self.cycles().len() == 1
    }
}

/// Solves the assignment problem for the instance's cost matrix
/// (diagonal arcs are treated as forbidden — an AP "fixed point" would
/// be a zero-length subtour).
#[must_use]
pub fn solve(instance: &AtspInstance) -> Assignment {
    let n = instance.len();
    let cost = |i: usize, j: usize| -> i64 {
        if i == j {
            INF as i64
        } else {
            instance.cost(i, j).min(INF) as i64
        }
    };

    // Jonker/Volgenant-style shortest augmenting path with potentials.
    // Row/column indices are 1-based internally; 0 is the virtual root.
    let inf = i64::MAX / 4;
    let mut u = vec![0i64; n + 1]; // row potentials
    let mut v = vec![0i64; n + 1]; // column potentials
    let mut way = vec![0usize; n + 1]; // predecessor column on the path
    let mut matched_row = vec![0usize; n + 1]; // matched_row[col] = row (1-based, 0 = free)

    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize; // current column
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // augment along the path
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut to = vec![0usize; n];
    for j in 1..=n {
        if matched_row[j] > 0 {
            to[matched_row[j] - 1] = j - 1;
        }
    }
    let mut total = 0u64;
    for (i, &j) in to.iter().enumerate() {
        // Arcs are clamped at INF by the instance; checked accumulation
        // keeps bounds exact instead of saturating into false ties.
        total = add_cost(total, instance.cost(i, j).min(INF));
    }
    Assignment { to, cost: total }
}

/// The AP lower bound on the instance's optimal tour cost.
#[must_use]
pub fn lower_bound(instance: &AtspInstance) -> u64 {
    solve(instance).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    #[test]
    fn assignment_is_a_permutation() {
        let inst = AtspInstance::from_rows(vec![
            vec![0, 4, 1, 3],
            vec![2, 0, 5, 1],
            vec![3, 6, 0, 2],
            vec![1, 2, 3, 0],
        ]);
        let a = solve(&inst);
        let mut seen = [false; 4];
        for &j in &a.to {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn ap_cost_lower_bounds_tour_cost() {
        for seed in 0..10u64 {
            let mut state = seed.wrapping_mul(2654435761) | 1;
            let inst = AtspInstance::from_fn(6, |_, _| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 50
            });
            let lb = lower_bound(&inst);
            let opt = brute::solve(&inst).cost;
            assert!(
                lb <= opt,
                "seed {seed}: AP bound {lb} exceeds optimum {opt}"
            );
        }
    }

    #[test]
    fn ap_exact_when_single_cycle() {
        // A cyclic cost structure where following the cheap arcs is a tour.
        let inst = AtspInstance::from_fn(5, |i, j| if (i + 1) % 5 == j { 1 } else { 40 });
        let a = solve(&inst);
        assert!(a.is_single_cycle());
        assert_eq!(a.cost, 5);
        assert_eq!(a.cost, brute::solve(&inst).cost);
    }

    #[test]
    fn cycles_decomposition() {
        // Costs that pair nodes 0↔1 and 2↔3 cheaply: AP picks two 2-cycles.
        let inst = AtspInstance::from_rows(vec![
            vec![0, 1, 50, 50],
            vec![1, 0, 50, 50],
            vec![50, 50, 0, 1],
            vec![50, 50, 1, 0],
        ]);
        let a = solve(&inst);
        assert_eq!(a.cost, 4);
        let cycles = a.cycles();
        assert_eq!(cycles.len(), 2);
        assert!(!a.is_single_cycle());
    }

    #[test]
    fn diagonal_never_assigned() {
        let inst = AtspInstance::from_fn(4, |_, _| 1);
        let a = solve(&inst);
        for (i, &j) in a.to.iter().enumerate() {
            assert_ne!(i, j, "AP must not assign the diagonal");
        }
    }
}
