//! # marchgen-atsp
//!
//! Exact and heuristic solvers for the **Asymmetric Travelling Salesman
//! Problem**, the combinatorial core of the paper's minimum-length Global
//! Test Sequence search (Section 4, f.4.3).
//!
//! The paper delegates the ATSP to the Fortran branch-and-bound of
//! Carpaneto, Dell'Amico and Toth (ACM Algorithm 750, reference \[12\]).
//! This crate replaces it with pure Rust:
//!
//! * [`held_karp`] — the exact `O(2ⁿ n²)` dynamic program, including
//!   enumeration of *all* optimal tours (the generator builds a March test
//!   from each and keeps the best),
//! * [`hungarian`] — an `O(n³)` assignment-problem solver used as the
//!   relaxation lower bound,
//! * [`branch_bound`] — a CDT-style subtour-patching branch-and-bound
//!   built on the AP relaxation, exact for the mid-size instances,
//! * [`heuristics`] — nearest-neighbour / greedy-edge construction and
//!   asymmetric-safe Or-opt improvement, used for upper bounds and as
//!   the local-search seed,
//! * [`local_search`] — a Lin–Kernighan-style local search (candidate
//!   lists, Or-opt/2-opt moves, don't-look bits, deterministic seeded
//!   restarts) for instances beyond the exact solvers' range,
//! * [`solve`] / [`Solver`] — a facade that picks a method by instance
//!   size (exact up to [`EXACT_THRESHOLD`] nodes, local search beyond).
//!
//! Costs use `u64` with [`INF`] marking forbidden arcs.
//!
//! # Example
//!
//! ```
//! use marchgen_atsp::{AtspInstance, solve};
//!
//! let inst = AtspInstance::from_rows(vec![
//!     vec![0, 1, 9],
//!     vec![9, 0, 1],
//!     vec![1, 9, 0],
//! ]);
//! let tour = solve(&inst);
//! assert_eq!(tour.cost, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod brute;
pub mod held_karp;
pub mod heuristics;
pub mod hungarian;
mod instance;
pub mod local_search;
mod solver;

pub use instance::{add_cost, AtspInstance, Tour, INF, MAX_DIMENSION};
pub use solver::{
    solve, solve_all_optimal, AtspSolver, AutoSolver, BranchBoundSolver, HeldKarpSolver,
    HeuristicSolver, LocalSearchSolver, SolveStats, Solver, SolverChoice, SolverRegistry,
    UnknownSolverError, EXACT_THRESHOLD,
};
