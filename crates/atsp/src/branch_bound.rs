//! Carpaneto–Dell'Amico–Toth-style branch-and-bound for the ATSP
//! (the approach of ACM Algorithm 750, the paper's reference \[12\]).
//!
//! Each search node solves the **assignment problem** relaxation
//! ([`crate::hungarian`]). If the AP permutation is a single Hamiltonian
//! cycle the node is solved; otherwise the shortest subtour is broken by
//! branching: child `k` *excludes* the subtour's `k`-th arc and *includes*
//! arcs `0..k` — a partition of the search space that avoids duplicate
//! exploration (Carpaneto & Toth 1980).

use crate::heuristics;
use crate::hungarian;
use crate::instance::{AtspInstance, Tour, INF};

/// Search statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BbStats {
    /// Branch-and-bound nodes expanded (AP solves performed).
    pub nodes: u64,
    /// Nodes pruned by the AP lower bound.
    pub pruned: u64,
}

/// Exact solution via AP-relaxation branch-and-bound.
///
/// # Panics
///
/// Panics if no finite tour exists (every Hamiltonian cycle crosses a
/// forbidden arc) — the callers construct complete graphs where a finite
/// tour always exists.
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    solve_with_stats(instance).0
}

/// Like [`solve`], also returning search statistics.
#[must_use]
pub fn solve_with_stats(instance: &AtspInstance) -> (Tour, BbStats) {
    let n = instance.len();
    if n == 1 {
        return (Tour::new(instance, vec![0]), BbStats::default());
    }
    let mut stats = BbStats::default();

    // Upper bound from the heuristic pipeline (may be infinite on
    // heavily constrained instances; the search fixes that).
    let mut best: Option<Tour> = {
        let h = heuristics::construct(instance);
        if h.cost < INF {
            Some(h)
        } else {
            None
        }
    };

    // DFS over cost-matrix modifications.
    let mut stack: Vec<AtspInstance> = vec![instance.clone()];
    while let Some(node) = stack.pop() {
        stats.nodes += 1;
        let ap = hungarian::solve(&node);
        let bound = ap.cost;
        if bound >= INF {
            continue; // infeasible node
        }
        if let Some(b) = &best {
            if bound >= b.cost {
                stats.pruned += 1;
                continue;
            }
        }
        if ap.is_single_cycle() {
            // AP solution is a tour: optimal for this node.
            let mut order = Vec::with_capacity(n);
            let mut cur = 0usize;
            for _ in 0..n {
                order.push(cur);
                cur = ap.to[cur];
            }
            let t = Tour::new(instance, order);
            if best.as_ref().is_none_or(|b| t.cost < b.cost) {
                best = Some(t);
            }
            continue;
        }
        // Branch on the shortest subtour.
        let mut cycles = ap.cycles();
        cycles.sort_by_key(Vec::len);
        let subtour = &cycles[0];
        let arcs: Vec<(usize, usize)> = subtour
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, subtour[(k + 1) % subtour.len()]))
            .collect();
        for (k, &(from, to)) in arcs.iter().enumerate() {
            let mut child = node.clone();
            // exclude arc k
            child.set_cost(from, to, INF);
            // include arcs 0..k
            for &(fi, ti) in &arcs[..k] {
                for j in 0..n {
                    if j != ti {
                        child.set_cost(fi, j, INF);
                    }
                    if j != fi {
                        child.set_cost(j, ti, INF);
                    }
                }
            }
            stack.push(child);
        }
    }
    (best.expect("instance admits a finite tour"), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, held_karp};

    fn random_instance(n: usize, seed: u64) -> AtspInstance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        AtspInstance::from_fn(n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        })
    }

    #[test]
    fn agrees_with_brute_force() {
        for n in 2..=8 {
            for seed in 0..6 {
                let inst = random_instance(n, seed * 17 + n as u64);
                let bb = solve(&inst);
                let bf = brute::solve(&inst);
                assert_eq!(bb.cost, bf.cost, "n={n} seed={seed}");
                assert!(inst.is_valid_tour(&bb.order));
            }
        }
    }

    #[test]
    fn agrees_with_held_karp_on_larger_instances() {
        for seed in 0..4 {
            let inst = random_instance(12, seed + 900);
            let bb = solve(&inst);
            let hk = held_karp::solve(&inst);
            assert_eq!(bb.cost, hk.cost, "seed={seed}");
        }
    }

    #[test]
    fn handles_forbidden_arcs() {
        let inst = AtspInstance::from_rows(vec![vec![0, INF, 1], vec![1, 0, INF], vec![INF, 1, 0]]);
        let t = solve(&inst);
        assert_eq!(t.cost, 3);
        assert_eq!(t.order, vec![0, 2, 1]);
    }

    #[test]
    fn stats_report_work() {
        // Two cheap 2-cycles force at least one branching step.
        let inst = AtspInstance::from_rows(vec![
            vec![0, 1, 50, 50],
            vec![1, 0, 50, 50],
            vec![50, 50, 0, 1],
            vec![50, 50, 1, 0],
        ]);
        let (t, stats) = solve_with_stats(&inst);
        assert_eq!(t.cost, brute::solve(&inst).cost);
        assert!(stats.nodes >= 1);
    }

    /// Regression: the AP bound used to saturate on near-`u64::MAX`
    /// weights, pinning bounds at the max so pruning decisions compared
    /// equal. Clamped arcs + checked accumulation keep the search exact.
    #[test]
    fn near_max_weights_resolve_to_the_true_optimum() {
        let huge = u64::MAX - 3;
        let inst = AtspInstance::from_rows(vec![
            vec![0, huge, 1, 2],
            vec![2, 0, huge, 1],
            vec![1, 2, 0, huge],
            vec![huge, 1, 2, 0],
        ]);
        let bb = solve(&inst);
        let bf = brute::solve(&inst);
        assert_eq!(bb.cost, bf.cost);
        assert_eq!(inst.cycle_cost(&bb.order), bb.cost);
    }

    #[test]
    fn single_and_two_node_instances() {
        let one = AtspInstance::from_fn(1, |_, _| 0);
        assert_eq!(solve(&one).order, vec![0]);
        let two = AtspInstance::from_rows(vec![vec![0, 2], vec![5, 0]]);
        assert_eq!(solve(&two).cost, 7);
    }
}
