//! The Held–Karp dynamic program: exact ATSP in `O(2ⁿ n²)` time and
//! `O(2ⁿ n)` space, plus enumeration of **all** optimal tours.
//!
//! The generator uses the enumeration to de-risk the paper's
//! "GTS length ≈ March complexity" proxy: every minimum-weight tour is
//! converted to a March test and the shortest result wins.

use crate::instance::{add_cost, AtspInstance, Tour, INF};

/// Practical node ceiling for the DP (`2²⁰ × 20 × 8` bytes ≈ 168 MiB is
/// past reasonable; 18 keeps the table under 40 MiB).
pub const MAX_NODES: usize = 18;

/// Exact solution by dynamic programming.
///
/// # Panics
///
/// Panics if the instance exceeds [`MAX_NODES`].
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    let table = DpTable::build(instance);
    Tour::new(instance, table.one_optimal_order())
}

/// All optimal tours, capped at `cap` results (the cap guards pathological
/// all-equal-cost instances; `cap = 0` means "just one").
///
/// # Panics
///
/// Panics if the instance exceeds [`MAX_NODES`].
#[must_use]
pub fn solve_all(instance: &AtspInstance, cap: usize) -> Vec<Tour> {
    let table = DpTable::build(instance);
    table
        .all_optimal_orders(cap.max(1))
        .into_iter()
        .map(|order| Tour::new(instance, order))
        .collect()
}

struct DpTable<'a> {
    instance: &'a AtspInstance,
    n: usize,
    /// `dp[mask * n + last]`: cheapest path starting at node 0, visiting
    /// exactly the nodes of `mask` (which always contains 0 and `last`),
    /// ending at `last`.
    dp: Vec<u64>,
    best_cost: u64,
}

impl<'a> DpTable<'a> {
    fn build(instance: &'a AtspInstance) -> DpTable<'a> {
        let n = instance.len();
        assert!(
            n <= MAX_NODES,
            "Held-Karp capped at {MAX_NODES} nodes, got {n}"
        );
        if n == 1 {
            return DpTable {
                instance,
                n,
                dp: vec![0, 0],
                best_cost: 0,
            };
        }
        let size = 1usize << n;
        let mut dp = vec![INF; size * n];
        dp[n] = 0; // at node 0, only 0 visited
        for mask in 1..size {
            if mask & 1 == 0 {
                continue; // paths always include the start node 0
            }
            for last in 0..n {
                if mask & (1 << last) == 0 {
                    continue;
                }
                let cur = dp[mask * n + last];
                if cur >= INF {
                    continue;
                }
                for next in 0..n {
                    if mask & (1 << next) != 0 {
                        continue;
                    }
                    let cand = add_cost(cur, instance.cost(last, next));
                    let slot = &mut dp[(mask | (1 << next)) * n + next];
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
        }
        let full = size - 1;
        let mut best_cost = INF;
        for last in 1..n {
            let c = add_cost(dp[full * n + last], instance.cost(last, 0));
            best_cost = best_cost.min(c);
        }
        DpTable {
            instance,
            n,
            dp,
            best_cost,
        }
    }

    fn one_optimal_order(&self) -> Vec<usize> {
        if self.n == 1 {
            return vec![0];
        }
        let full = (1usize << self.n) - 1;
        let mut last = (1..self.n)
            .min_by_key(|&l| add_cost(self.dp[full * self.n + l], self.instance.cost(l, 0)))
            .expect("n > 1");
        let mut order = vec![last];
        let mut mask = full;
        while last != 0 {
            let without = mask & !(1 << last);
            let target = self.dp[mask * self.n + last];
            let prev = (0..self.n)
                .find(|&p| {
                    p != last
                        && (without & (1 << p)) != 0
                        && add_cost(self.dp[without * self.n + p], self.instance.cost(p, last))
                            == target
                })
                .expect("dp table is consistent");
            order.push(prev);
            mask = without;
            last = prev;
        }
        order.reverse();
        order
    }

    /// Depth-first enumeration of every optimal tour (suffix-first), up
    /// to `cap` results.
    fn all_optimal_orders(&self, cap: usize) -> Vec<Vec<usize>> {
        if self.n == 1 {
            return vec![vec![0]];
        }
        let full = (1usize << self.n) - 1;
        let mut results: Vec<Vec<usize>> = Vec::new();
        // stack entries: (mask, last, suffix from last to end)
        let mut stack: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for last in 1..self.n {
            let c = add_cost(self.dp[full * self.n + last], self.instance.cost(last, 0));
            if c == self.best_cost && c < INF {
                stack.push((full, last, vec![last]));
            }
        }
        while let Some((mask, last, suffix)) = stack.pop() {
            if results.len() >= cap {
                break;
            }
            if last == 0 {
                let mut order = suffix.clone();
                order.reverse();
                results.push(order);
                continue;
            }
            let without = mask & !(1 << last);
            let target = self.dp[mask * self.n + last];
            for prev in 0..self.n {
                if prev == last || (without & (1 << prev)) == 0 {
                    continue;
                }
                let via = add_cost(
                    self.dp[without * self.n + prev],
                    self.instance.cost(prev, last),
                );
                if via == target {
                    let mut next_suffix = suffix.clone();
                    next_suffix.push(prev);
                    stack.push((without, prev, next_suffix));
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn pseudo_random_instance(n: usize, seed: u64) -> AtspInstance {
        // xorshift-based deterministic matrix
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        AtspInstance::from_fn(n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        })
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for n in 2..=7 {
            for seed in 0..8 {
                let inst = pseudo_random_instance(n, seed * 31 + n as u64);
                let hk = solve(&inst);
                let bf = brute::solve(&inst);
                assert_eq!(hk.cost, bf.cost, "n={n} seed={seed}\n{inst}");
                assert_eq!(inst.cycle_cost(&hk.order), hk.cost);
            }
        }
    }

    #[test]
    fn single_node() {
        let inst = AtspInstance::from_fn(1, |_, _| 0);
        let t = solve(&inst);
        assert_eq!(t.order, vec![0]);
        assert_eq!(t.cost, 0);
    }

    #[test]
    fn two_nodes() {
        let inst = AtspInstance::from_rows(vec![vec![0, 3], vec![4, 0]]);
        let t = solve(&inst);
        assert_eq!(t.cost, 7);
    }

    #[test]
    fn all_optimal_enumerates_every_minimum() {
        // A symmetric 4-cycle of equal costs has several optimal tours.
        let inst = AtspInstance::from_fn(4, |_, _| 5);
        let all = solve_all(&inst, 64);
        assert_eq!(all.len(), 6, "3! tours, all optimal");
        assert!(all.iter().all(|t| t.cost == 20));
        // Tours are distinct.
        let mut orders: Vec<Vec<usize>> = all.iter().map(|t| t.order.clone()).collect();
        orders.sort();
        orders.dedup();
        assert_eq!(orders.len(), 6);
    }

    #[test]
    fn all_optimal_respects_cap() {
        let inst = AtspInstance::from_fn(6, |_, _| 1);
        let all = solve_all(&inst, 10);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn all_optimal_agrees_with_brute_on_random() {
        for seed in 0..6 {
            let inst = pseudo_random_instance(6, seed + 100);
            let bf = brute::solve(&inst);
            let all = solve_all(&inst, 1000);
            assert!(!all.is_empty());
            assert!(all.iter().all(|t| t.cost == bf.cost));
            assert!(all.contains(&bf) || all.iter().any(|t| t.cost == bf.cost));
        }
    }

    /// Regression: with near-`u64::MAX` weights the old saturating DP
    /// pinned every completion at the max, so tours through a different
    /// number of extreme arcs compared *equal* and the "optimal" pick
    /// was arbitrary. Clamped arcs + checked accumulation keep the
    /// order exact: the unique cheap cycle must win.
    #[test]
    fn near_max_weights_resolve_to_the_true_optimum() {
        let huge = u64::MAX - 17;
        // Cheap Hamiltonian cycle 0→1→2→3→0 of cost 4; every other arc
        // is an extreme weight (clamping makes them forbidden).
        let inst = AtspInstance::from_fn(4, |i, j| if (i + 1) % 4 == j { 1 } else { huge });
        let t = solve(&inst);
        assert_eq!(t.order, vec![0, 1, 2, 3]);
        assert_eq!(t.cost, 4);
        assert!(t.is_finite());
        // A mixed instance — extreme arcs present, cheap tour hidden —
        // must agree with the brute-force oracle exactly.
        let inst = AtspInstance::from_rows(vec![
            vec![0, huge, 3, 9],
            vec![2, 0, huge, 4],
            vec![7, 1, 0, huge],
            vec![huge, 8, 5, 0],
        ]);
        let t = solve(&inst);
        let bf = brute::solve(&inst);
        assert_eq!(t.cost, bf.cost);
        assert!(t.is_finite(), "the clamped arcs are routed around");
        assert_eq!(inst.cycle_cost(&t.order), t.cost);
    }

    #[test]
    fn forbidden_arcs_are_avoided_when_possible() {
        // 0→1 forbidden; optimal must route 0→2→1→0.
        let inst = AtspInstance::from_rows(vec![vec![0, INF, 1], vec![1, 0, INF], vec![INF, 1, 0]]);
        let t = solve(&inst);
        assert_eq!(t.order, vec![0, 2, 1]);
        assert_eq!(t.cost, 3);
    }
}
