//! The solver facade: picks an algorithm by instance size.

use crate::instance::{AtspInstance, Tour};
use crate::{branch_bound, held_karp, heuristics};

/// Which algorithm the facade (or a caller) should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solver {
    /// Exact `O(2ⁿ n²)` dynamic programming ([`held_karp`]).
    HeldKarp,
    /// Exact AP-relaxation branch-and-bound ([`branch_bound`]).
    BranchBound,
    /// Heuristic construction + Or-opt ([`heuristics`]); not exact.
    Heuristic,
}

impl Solver {
    /// The method [`solve`] picks for an instance of `n` nodes: Held–Karp
    /// up to its table limit, branch-and-bound up to 40 nodes, heuristics
    /// beyond.
    #[must_use]
    pub fn for_size(n: usize) -> Solver {
        if n <= held_karp::MAX_NODES {
            Solver::HeldKarp
        } else if n <= 40 {
            Solver::BranchBound
        } else {
            Solver::Heuristic
        }
    }

    /// Runs this solver on the instance.
    #[must_use]
    pub fn run(self, instance: &AtspInstance) -> Tour {
        match self {
            Solver::HeldKarp => held_karp::solve(instance),
            Solver::BranchBound => branch_bound::solve(instance),
            Solver::Heuristic => heuristics::construct(instance),
        }
    }
}

/// Solves the instance with the size-appropriate method (exact for every
/// instance the March generator produces in practice).
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    Solver::for_size(instance.len()).run(instance)
}

/// Enumerates optimal tours: all of them (up to `cap`) when the instance
/// fits Held–Karp, otherwise the single tour the exact/heuristic method
/// returns.
#[must_use]
pub fn solve_all_optimal(instance: &AtspInstance, cap: usize) -> Vec<Tour> {
    if instance.len() <= held_karp::MAX_NODES {
        held_karp::solve_all(instance, cap)
    } else {
        vec![solve(instance)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dispatch() {
        assert_eq!(Solver::for_size(4), Solver::HeldKarp);
        assert_eq!(Solver::for_size(held_karp::MAX_NODES), Solver::HeldKarp);
        assert_eq!(Solver::for_size(held_karp::MAX_NODES + 1), Solver::BranchBound);
        assert_eq!(Solver::for_size(64), Solver::Heuristic);
    }

    #[test]
    fn facade_solves() {
        let inst = AtspInstance::from_rows(vec![
            vec![0, 1, 9],
            vec![9, 0, 1],
            vec![1, 9, 0],
        ]);
        assert_eq!(solve(&inst).cost, 3);
        let all = solve_all_optimal(&inst, 8);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].cost, 3);
    }

    #[test]
    fn all_solvers_agree_on_a_fixed_instance() {
        let inst = AtspInstance::from_rows(vec![
            vec![0, 2, 9, 10],
            vec![1, 0, 6, 4],
            vec![15, 7, 0, 8],
            vec![6, 3, 12, 0],
        ]);
        let hk = Solver::HeldKarp.run(&inst);
        let bb = Solver::BranchBound.run(&inst);
        assert_eq!(hk.cost, bb.cost);
        let h = Solver::Heuristic.run(&inst);
        assert!(h.cost >= hk.cost);
    }
}
