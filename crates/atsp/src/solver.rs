//! The solver facade: the [`AtspSolver`] extension trait, the built-in
//! implementations, a by-name [`SolverRegistry`], and the size-dispatch
//! helpers the generator used historically.

use crate::instance::{AtspInstance, Tour};
use crate::{branch_bound, held_karp, heuristics, local_search};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Largest instance the size-dispatching [`AutoSolver`] still solves
/// *exactly* (Held–Karp up to its table limit, branch-and-bound up to
/// here); beyond it the Lin–Kernighan-style local search takes over.
pub const EXACT_THRESHOLD: usize = 40;

/// Statistics of one solver invocation, surfaced by the request layer's
/// diagnostics. Exact solvers report zeros; the local search counts its
/// improving moves and perturbation rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Improving local-search moves applied.
    pub iterations: u64,
    /// Perturbation restarts performed.
    pub restarts: u64,
}

impl SolveStats {
    /// Accumulates another invocation's counters (requests solve one
    /// ATSP instance per unique TP set).
    pub fn absorb(&mut self, other: SolveStats) {
        self.iterations += other.iterations;
        self.restarts += other.restarts;
    }
}

/// A pluggable ATSP solving strategy.
///
/// The March generator talks to the ATSP layer exclusively through this
/// trait, so alternative backends (an ILP solver, an external service, a
/// tuned metaheuristic) can be dropped in via [`SolverRegistry`] without
/// touching the pipeline.
///
/// Implementations must be `Send + Sync`: the batch service layer shares
/// one solver across worker threads.
pub trait AtspSolver: Send + Sync {
    /// A short stable identifier (used by [`SolverRegistry`] and the
    /// serialized request format).
    fn name(&self) -> &str;

    /// Solves the instance, returning one tour (the best the strategy
    /// can produce; exact strategies return an optimum).
    fn solve(&self, instance: &AtspInstance) -> Tour;

    /// `true` when [`AtspSolver::solve`] is guaranteed optimal for this
    /// instance.
    fn is_exact_for(&self, instance: &AtspInstance) -> bool;

    /// Enumerates optimal tours up to `cap`. The default returns the
    /// single [`AtspSolver::solve`] tour; strategies that can enumerate
    /// (Held–Karp) override this — the March constructor tries every
    /// optimal tour and keeps the shortest test.
    fn solve_all_optimal(&self, instance: &AtspInstance, cap: usize) -> Vec<Tour> {
        let _ = cap;
        vec![self.solve(instance)]
    }

    /// [`AtspSolver::solve_all_optimal`] plus the invocation's
    /// [`SolveStats`]. The default reports zeros (exact strategies do no
    /// iterative search); the local-search backend overrides it so the
    /// request layer can surface iteration and restart counts in its
    /// diagnostics.
    fn solve_all_optimal_with_stats(
        &self,
        instance: &AtspInstance,
        cap: usize,
    ) -> (Vec<Tour>, SolveStats) {
        (self.solve_all_optimal(instance, cap), SolveStats::default())
    }
}

/// Exact Held–Karp dynamic programming with all-optimal-tour
/// enumeration; instances beyond [`held_karp::MAX_NODES`] fall back to
/// branch-and-bound (which cannot enumerate).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeldKarpSolver;

impl AtspSolver for HeldKarpSolver {
    fn name(&self) -> &str {
        "held-karp"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        if instance.len() <= held_karp::MAX_NODES {
            held_karp::solve(instance)
        } else {
            branch_bound::solve(instance)
        }
    }

    fn is_exact_for(&self, _instance: &AtspInstance) -> bool {
        true
    }

    fn solve_all_optimal(&self, instance: &AtspInstance, cap: usize) -> Vec<Tour> {
        if instance.len() <= held_karp::MAX_NODES {
            held_karp::solve_all(instance, cap)
        } else {
            vec![branch_bound::solve(instance)]
        }
    }
}

/// Exact AP-relaxation branch-and-bound (single optimal tour).
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchBoundSolver;

impl AtspSolver for BranchBoundSolver {
    fn name(&self) -> &str {
        "branch-bound"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        branch_bound::solve(instance)
    }

    fn is_exact_for(&self, _instance: &AtspInstance) -> bool {
        true
    }
}

/// Heuristic construction + Or-opt improvement; fast but inexact.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicSolver;

impl AtspSolver for HeuristicSolver {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        heuristics::construct(instance)
    }

    fn is_exact_for(&self, _instance: &AtspInstance) -> bool {
        false
    }
}

/// Lin–Kernighan-style local search ([`local_search`]): candidate-list
/// guided Or-opt/2-opt descent with don't-look bits and deterministic
/// seeded restarts. Inexact but near-optimal, and the backend of choice
/// for instances beyond the exact solvers' range.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearchSolver;

impl AtspSolver for LocalSearchSolver {
    fn name(&self) -> &str {
        "local-search"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        local_search::solve(instance)
    }

    fn is_exact_for(&self, _instance: &AtspInstance) -> bool {
        false
    }

    fn solve_all_optimal_with_stats(
        &self,
        instance: &AtspInstance,
        _cap: usize,
    ) -> (Vec<Tour>, SolveStats) {
        let (tour, stats) =
            local_search::solve_with_stats(instance, &local_search::Config::default());
        (vec![tour], stats)
    }
}

/// Size-dispatching default: Held–Karp (with enumeration) up to its
/// table limit, branch-and-bound up to [`EXACT_THRESHOLD`] nodes, the
/// Lin–Kernighan-style local search beyond — the behaviour of the free
/// [`solve`] / [`solve_all_optimal`] functions. The exact path is
/// retained as the cross-check oracle for the local search in the
/// differential test suites.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoSolver;

impl AtspSolver for AutoSolver {
    fn name(&self) -> &str {
        "auto"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        Solver::for_size(instance.len()).run(instance)
    }

    fn is_exact_for(&self, instance: &AtspInstance) -> bool {
        instance.len() <= EXACT_THRESHOLD
    }

    fn solve_all_optimal(&self, instance: &AtspInstance, cap: usize) -> Vec<Tour> {
        if instance.len() <= held_karp::MAX_NODES {
            held_karp::solve_all(instance, cap)
        } else {
            vec![self.solve(instance)]
        }
    }

    fn solve_all_optimal_with_stats(
        &self,
        instance: &AtspInstance,
        cap: usize,
    ) -> (Vec<Tour>, SolveStats) {
        if instance.len() > EXACT_THRESHOLD {
            LocalSearchSolver.solve_all_optimal_with_stats(instance, cap)
        } else {
            (self.solve_all_optimal(instance, cap), SolveStats::default())
        }
    }
}

/// The solver requested by a generation run — serializable by name, and
/// resolved against a [`SolverRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum SolverChoice {
    /// Size-dispatching default ([`AutoSolver`]).
    #[default]
    Auto,
    /// Exact with all-optimal enumeration ([`HeldKarpSolver`]).
    HeldKarp,
    /// Exact, single tour ([`BranchBoundSolver`]).
    BranchBound,
    /// Inexact but fast ([`HeuristicSolver`]).
    Heuristic,
    /// Lin–Kernighan-style local search ([`LocalSearchSolver`]).
    LocalSearch,
    /// A custom strategy registered under this name.
    Custom(String),
}

impl SolverChoice {
    /// The registry key for this choice.
    #[must_use]
    pub fn key(&self) -> &str {
        match self {
            SolverChoice::Auto => "auto",
            SolverChoice::HeldKarp => "held-karp",
            SolverChoice::BranchBound => "branch-bound",
            SolverChoice::Heuristic => "heuristic",
            SolverChoice::LocalSearch => "local-search",
            SolverChoice::Custom(name) => name,
        }
    }

    /// Parses a registry key back into a choice (never fails: unknown
    /// names become [`SolverChoice::Custom`] and are validated at
    /// resolution time).
    #[must_use]
    pub fn from_key(key: &str) -> SolverChoice {
        match key {
            "auto" => SolverChoice::Auto,
            "held-karp" => SolverChoice::HeldKarp,
            "branch-bound" => SolverChoice::BranchBound,
            "heuristic" => SolverChoice::Heuristic,
            "local-search" => SolverChoice::LocalSearch,
            other => SolverChoice::Custom(other.to_owned()),
        }
    }
}

impl fmt::Display for SolverChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Error returned when a [`SolverChoice`] names no registered solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSolverError {
    /// The unresolved registry key.
    pub name: String,
}

impl fmt::Display for UnknownSolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no ATSP solver registered under {:?}", self.name)
    }
}

impl std::error::Error for UnknownSolverError {}

/// A by-name registry of [`AtspSolver`] strategies.
///
/// [`SolverRegistry::default`] carries the five built-ins (`auto`,
/// `held-karp`, `branch-bound`, `heuristic`, `local-search`); callers
/// add their own with
/// [`SolverRegistry::register`] and select them per request through
/// [`SolverChoice::Custom`].
///
/// ```
/// use marchgen_atsp::{AtspInstance, AtspSolver, SolverChoice, SolverRegistry, Tour};
///
/// struct FixedOrder;
/// impl AtspSolver for FixedOrder {
///     fn name(&self) -> &str { "fixed" }
///     fn solve(&self, inst: &AtspInstance) -> Tour {
///         Tour::new(inst, (0..inst.len()).collect())
///     }
///     fn is_exact_for(&self, _inst: &AtspInstance) -> bool { false }
/// }
///
/// let mut registry = SolverRegistry::default();
/// registry.register(FixedOrder);
/// let solver = registry.resolve(&SolverChoice::Custom("fixed".into())).unwrap();
/// assert_eq!(solver.name(), "fixed");
/// ```
#[derive(Clone)]
pub struct SolverRegistry {
    solvers: BTreeMap<String, Arc<dyn AtspSolver>>,
}

impl Default for SolverRegistry {
    fn default() -> SolverRegistry {
        let mut registry = SolverRegistry {
            solvers: BTreeMap::new(),
        };
        registry.register(AutoSolver);
        registry.register(HeldKarpSolver);
        registry.register(BranchBoundSolver);
        registry.register(HeuristicSolver);
        registry.register(LocalSearchSolver);
        registry
    }
}

impl fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl SolverRegistry {
    /// An empty registry (no built-ins).
    #[must_use]
    pub fn empty() -> SolverRegistry {
        SolverRegistry {
            solvers: BTreeMap::new(),
        }
    }

    /// Registers a strategy under its [`AtspSolver::name`], replacing
    /// any previous entry with that name.
    pub fn register(&mut self, solver: impl AtspSolver + 'static) {
        self.register_arc(Arc::new(solver));
    }

    /// Registers an already-shared strategy.
    pub fn register_arc(&mut self, solver: Arc<dyn AtspSolver>) {
        self.solvers.insert(solver.name().to_owned(), solver);
    }

    /// Looks a strategy up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn AtspSolver>> {
        self.solvers.get(name).cloned()
    }

    /// Resolves a request's [`SolverChoice`].
    ///
    /// # Errors
    ///
    /// [`UnknownSolverError`] when nothing is registered under the
    /// choice's key.
    pub fn resolve(
        &self,
        choice: &SolverChoice,
    ) -> Result<Arc<dyn AtspSolver>, UnknownSolverError> {
        self.get(choice.key()).ok_or_else(|| UnknownSolverError {
            name: choice.key().to_owned(),
        })
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.solvers.keys().map(String::as_str).collect()
    }
}

/// Which algorithm the facade (or a caller) should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solver {
    /// Exact `O(2ⁿ n²)` dynamic programming ([`held_karp`]).
    HeldKarp,
    /// Exact AP-relaxation branch-and-bound ([`branch_bound`]).
    BranchBound,
    /// Heuristic construction + Or-opt ([`heuristics`]); not exact.
    Heuristic,
    /// Lin–Kernighan-style local search ([`local_search`]); not exact
    /// but near-optimal, and stronger than the one-shot heuristics.
    LocalSearch,
}

impl Solver {
    /// The method [`solve`] picks for an instance of `n` nodes: Held–Karp
    /// up to its table limit, branch-and-bound up to [`EXACT_THRESHOLD`]
    /// nodes, the local search beyond.
    #[must_use]
    pub fn for_size(n: usize) -> Solver {
        if n <= held_karp::MAX_NODES {
            Solver::HeldKarp
        } else if n <= EXACT_THRESHOLD {
            Solver::BranchBound
        } else {
            Solver::LocalSearch
        }
    }

    /// Runs this solver on the instance.
    #[must_use]
    pub fn run(self, instance: &AtspInstance) -> Tour {
        match self {
            Solver::HeldKarp => held_karp::solve(instance),
            Solver::BranchBound => branch_bound::solve(instance),
            Solver::Heuristic => heuristics::construct(instance),
            Solver::LocalSearch => local_search::solve(instance),
        }
    }
}

/// Solves the instance with the size-appropriate method (exact for every
/// instance the March generator produces in practice).
#[must_use]
pub fn solve(instance: &AtspInstance) -> Tour {
    Solver::for_size(instance.len()).run(instance)
}

/// Enumerates optimal tours: all of them (up to `cap`) when the instance
/// fits Held–Karp, otherwise the single tour the exact/heuristic method
/// returns.
#[must_use]
pub fn solve_all_optimal(instance: &AtspInstance, cap: usize) -> Vec<Tour> {
    if instance.len() <= held_karp::MAX_NODES {
        held_karp::solve_all(instance, cap)
    } else {
        vec![solve(instance)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dispatch() {
        assert_eq!(Solver::for_size(4), Solver::HeldKarp);
        assert_eq!(Solver::for_size(held_karp::MAX_NODES), Solver::HeldKarp);
        assert_eq!(
            Solver::for_size(held_karp::MAX_NODES + 1),
            Solver::BranchBound
        );
        assert_eq!(Solver::for_size(EXACT_THRESHOLD), Solver::BranchBound);
        assert_eq!(Solver::for_size(EXACT_THRESHOLD + 1), Solver::LocalSearch);
        assert_eq!(Solver::for_size(64), Solver::LocalSearch);
    }

    #[test]
    fn facade_solves() {
        let inst = AtspInstance::from_rows(vec![vec![0, 1, 9], vec![9, 0, 1], vec![1, 9, 0]]);
        assert_eq!(solve(&inst).cost, 3);
        let all = solve_all_optimal(&inst, 8);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].cost, 3);
    }

    #[test]
    fn registry_resolves_builtins() {
        let registry = SolverRegistry::default();
        assert_eq!(
            registry.names(),
            vec![
                "auto",
                "branch-bound",
                "held-karp",
                "heuristic",
                "local-search"
            ]
        );
        for choice in [
            SolverChoice::Auto,
            SolverChoice::HeldKarp,
            SolverChoice::BranchBound,
            SolverChoice::Heuristic,
            SolverChoice::LocalSearch,
        ] {
            let solver = registry.resolve(&choice).expect("built-in resolves");
            assert_eq!(solver.name(), choice.key());
            assert_eq!(SolverChoice::from_key(choice.key()), choice);
        }
        let err = registry
            .resolve(&SolverChoice::Custom("nope".into()))
            .err()
            .expect("must fail");
        assert_eq!(err.name, "nope");
    }

    #[test]
    fn trait_solvers_match_free_functions() {
        let inst = AtspInstance::from_rows(vec![
            vec![0, 2, 9, 10],
            vec![1, 0, 6, 4],
            vec![15, 7, 0, 8],
            vec![6, 3, 12, 0],
        ]);
        let opt = solve(&inst).cost;
        for choice in [
            SolverChoice::Auto,
            SolverChoice::HeldKarp,
            SolverChoice::BranchBound,
        ] {
            let solver = SolverRegistry::default().resolve(&choice).unwrap();
            assert_eq!(solver.solve(&inst).cost, opt, "{choice}");
            assert!(solver.is_exact_for(&inst));
            for tour in solver.solve_all_optimal(&inst, 16) {
                assert_eq!(tour.cost, opt);
                assert!(inst.is_valid_tour(&tour.order));
            }
        }
        let heuristic = HeuristicSolver;
        assert!(heuristic.solve(&inst).cost >= opt);
        assert!(!heuristic.is_exact_for(&inst));
        let local = LocalSearchSolver;
        assert!(local.solve(&inst).cost >= opt);
        assert!(!local.is_exact_for(&inst));
    }

    /// The local-search backend surfaces its work through the stats
    /// variant; exact backends report zeros.
    #[test]
    fn solve_stats_plumbing() {
        let mut state = 0x1234_5678_u64;
        let inst = AtspInstance::from_fn(14, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        });
        let (tours, stats) = LocalSearchSolver.solve_all_optimal_with_stats(&inst, 8);
        assert_eq!(tours.len(), 1);
        assert!(stats.restarts > 0);
        let (_, exact_stats) = HeldKarpSolver.solve_all_optimal_with_stats(&inst, 8);
        assert_eq!(exact_stats, SolveStats::default());
        let mut sum = SolveStats::default();
        sum.absorb(stats);
        sum.absorb(stats);
        assert_eq!(sum.restarts, 2 * stats.restarts);
    }

    /// `Auto` stays exact through [`EXACT_THRESHOLD`] and hands larger
    /// instances to the local search (visible through its stats).
    #[test]
    fn auto_dispatches_to_local_search_beyond_the_exact_threshold() {
        let mut state = 0x9876_u64;
        let big = AtspInstance::from_fn(EXACT_THRESHOLD + 2, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        });
        assert!(!AutoSolver.is_exact_for(&big));
        let (tours, stats) = AutoSolver.solve_all_optimal_with_stats(&big, 4);
        assert_eq!(tours.len(), 1);
        assert!(stats.restarts > 0, "local search ran");
        assert!(big.is_valid_tour(&tours[0].order));

        let small = AtspInstance::from_rows(vec![vec![0, 1, 9], vec![9, 0, 1], vec![1, 9, 0]]);
        assert!(AutoSolver.is_exact_for(&small));
        let (_, stats) = AutoSolver.solve_all_optimal_with_stats(&small, 4);
        assert_eq!(stats, SolveStats::default(), "exact path reports zeros");
    }

    #[test]
    fn all_solvers_agree_on_a_fixed_instance() {
        let inst = AtspInstance::from_rows(vec![
            vec![0, 2, 9, 10],
            vec![1, 0, 6, 4],
            vec![15, 7, 0, 8],
            vec![6, 3, 12, 0],
        ]);
        let hk = Solver::HeldKarp.run(&inst);
        let bb = Solver::BranchBound.run(&inst);
        assert_eq!(hk.cost, bb.cost);
        let h = Solver::Heuristic.run(&inst);
        assert!(h.cost >= hk.cost);
    }
}
