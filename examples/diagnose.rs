//! Fault diagnosis with March syndromes — the output-tracing direction of
//! the paper's reference [6]: which fault *model* is present, inferred
//! from the positional fingerprint of failing reads.
//!
//! ```sh
//! cargo run --release --example diagnose
//! ```

use marchgen::prelude::*;
use marchgen::sim::diagnosis::diagnose;

fn main() {
    let models =
        parse_fault_list("SAF, TF, CFin<u>, CFid<u,0>, CFid<u,1>, IRF").expect("fault list parses");

    println!("Diagnostic resolution of classical March tests");
    println!(
        "(models: SAF, TF, CFin<↑>, CFid<↑,0>, CFid<↑,1>, IRF — {} instances)\n",
        models.len()
    );

    for (name, test) in [
        ("MATS", known::mats()),
        ("MATS++", known::mats_plus_plus()),
        ("March C-", known::march_c_minus()),
        ("March SS", known::march_ss()),
    ] {
        let report = diagnose(&test, &models, 5);
        println!("{name} ({}n): {report}", test.complexity());
    }

    println!("A generated test tuned for the same list:");
    let out = Generator::new(models.clone()).run().expect("generates");
    let report = diagnose(&out.test, &models, 5);
    println!("generated ({}n): {report}", out.test.complexity());
    println!("note: detection-optimal tests are usually *not* diagnosis-optimal —");
    println!("longer tests with more observation points separate more models.");
}
