//! A fault-tolerant `/v1/stream` consumer: submits a batch of fault
//! lists to a running `marchgend` daemon and prints each progress frame
//! as it arrives — no HTTP library, just a `TcpStream` and the chunked
//! transfer coding decoded by hand, to show exactly what is on the
//! wire. If the connection drops mid-batch the client does NOT
//! resubmit: it reconnects with the resumption token from the stream's
//! `batch` announcement frame (`?resume=<batch_id>&from=<seq>`,
//! retrying with exponential backoff) and picks up exactly where it
//! left off — the server kept computing the whole time.
//!
//! Start a daemon, then stream a batch against it:
//!
//! ```text
//! $ marchgend --addr 127.0.0.1:8378 &
//! $ cargo run --example stream_client -- 127.0.0.1:8378 "SAF" "SAF, TF" "CFin, CFid"
//! frame: {"event":"batch","batch_id":"b-...","request_id":"req-...","seq":0}
//! frame: {"event":"started","index":0,"faults":["SA0","SA1"],"seq":1}
//! frame: {"event":"item","index":0,"ok":true,"outcome":{...},"seq":2}
//! ...
//! frame: {"event":"completed","total":3,"succeeded":3,"failed":0,"seq":7}
//! ```
//!
//! Each line of the body is one self-describing JSON frame (see
//! `docs/WIRE_FORMAT.md`): a leading `"batch"` announcing the
//! resumption token, `"started"` when a worker picks an item up,
//! `"item"` with the outcome summary (or the error) when it finishes,
//! and a terminal `"completed"` carrying the batch totals. Every frame
//! carries a monotone `"seq"` — the cursor a resume continues from.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reconnection attempts before giving up on a broken stream.
const MAX_ATTEMPTS: u32 = 5;
/// First retry delay; doubles per attempt (250ms → 4s).
const INITIAL_BACKOFF: Duration = Duration::from_millis(250);

/// Where the client is in the stream — everything a reconnect needs.
#[derive(Default)]
struct Progress {
    /// The resumption token from the `batch` announcement frame.
    batch_id: Option<String>,
    /// The next frame sequence we have not yet printed.
    next_seq: u64,
    /// Set once the terminal `completed` frame arrived.
    completed: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:8378".to_owned());
    let lists: Vec<String> = args.collect();
    if lists.is_empty() {
        eprintln!("usage: stream_client [HOST:PORT] \"FAULT LIST\" [\"FAULT LIST\"...]");
        std::process::exit(2);
    }

    // One request document per fault-list argument; a single entry like
    // "SAF, TF" expands server-side exactly like the CLI parser.
    let body = format!(
        "[{}]",
        lists
            .iter()
            .map(|list| format!("{{\"faults\": [\"{}\"]}}", list.replace('"', "")))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut progress = Progress::default();
    let mut backoff = INITIAL_BACKOFF;
    let mut attempts = 0u32;
    loop {
        let outcome = run_stream(&addr, &body, &mut progress);
        if progress.completed {
            return Ok(());
        }
        let reason = match outcome {
            Err(error) => error.to_string(),
            // EOF without the terminal frame: the server (or a proxy)
            // closed early — same recovery as an I/O error.
            Ok(()) => "connection closed before the terminal frame".to_owned(),
        };
        if progress.batch_id.is_none() || attempts >= MAX_ATTEMPTS {
            eprintln!("stream failed ({reason}); giving up");
            std::process::exit(1);
        }
        attempts += 1;
        eprintln!(
            "stream interrupted ({reason}); resuming from seq {} in {backoff:?} \
             (attempt {attempts}/{MAX_ATTEMPTS})",
            progress.next_seq
        );
        std::thread::sleep(backoff);
        backoff *= 2;
    }
}

/// One connection's worth of streaming: submits the batch (first call)
/// or resumes it (reconnects), printing frames and advancing `progress`
/// until the stream ends or breaks.
fn run_stream(
    addr: &str,
    body: &str,
    progress: &mut Progress,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    match &progress.batch_id {
        None => write!(
            stream,
            "POST /v1/stream HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )?,
        Some(batch_id) => write!(
            stream,
            "GET /v1/stream?resume={batch_id}&from={} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n",
            progress.next_seq
        )?,
    }

    let mut reader = BufReader::new(stream);

    // ---- response head --------------------------------------------------
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if !status_line.starts_with("HTTP/1.1 200") {
        // Validation and resume failures arrive buffered
        // (Content-Length), so the rest of the stream is the structured
        // error document. `resume_unknown` (404) and `resume_gap` (410)
        // are not retryable — the replay window is gone; resubmit.
        let mut rest = String::new();
        reader.read_to_string(&mut rest)?;
        let error_body = rest.rsplit("\r\n\r\n").next().unwrap_or(&rest);
        eprintln!("daemon answered {}: {error_body}", status_line.trim());
        std::process::exit(1);
    }
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        if header.trim().is_empty() {
            break;
        }
        if header
            .to_ascii_lowercase()
            .starts_with("transfer-encoding: chunked")
        {
            chunked = true;
        }
    }

    // ---- body: one JSON frame per line ----------------------------------
    // The daemon flushes every frame as its own chunk, so each iteration
    // observes progress in real time — chunk sizes are read and the
    // payload re-split on newlines (one chunk is one line today, but the
    // coding does not promise that).
    let mut pending = String::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size = usize::from_str_radix(size_line.trim(), 16)?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            pending.push_str(std::str::from_utf8(&chunk[..size])?);
            while let Some(newline) = pending.find('\n') {
                handle_frame(progress, &pending[..newline]);
                pending.drain(..=newline);
            }
        }
    } else {
        // An HTTP/1.0-style peer fallback: EOF-delimited raw lines.
        for line in reader.lines() {
            handle_frame(progress, &line?);
        }
    }
    Ok(())
}

/// Prints one frame and advances the resume cursor: remembers the
/// `batch_id` announcement, tracks the last `seq`, and spots the
/// terminal frame.
fn handle_frame(progress: &mut Progress, line: &str) {
    println!("frame: {line}");
    if progress.batch_id.is_none() && line.starts_with("{\"event\":\"batch\"") {
        progress.batch_id = line
            .split_once("\"batch_id\":\"")
            .and_then(|(_, rest)| rest.split_once('"'))
            .map(|(id, _)| id.to_owned());
    }
    if let Some((_, rest)) = line.rsplit_once("\"seq\":") {
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(seq) = digits.parse::<u64>() {
            progress.next_seq = seq + 1;
        }
    }
    if line.starts_with("{\"event\":\"completed\"") {
        progress.completed = true;
    }
}
