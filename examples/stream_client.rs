//! A minimal `/v1/stream` consumer: submits a batch of fault lists to a
//! running `marchgend` daemon and prints each progress frame as it
//! arrives — no HTTP library, just a `TcpStream` and the chunked
//! transfer coding decoded by hand, to show exactly what is on the
//! wire.
//!
//! Start a daemon, then stream a batch against it:
//!
//! ```text
//! $ marchgend --addr 127.0.0.1:8378 &
//! $ cargo run --example stream_client -- 127.0.0.1:8378 "SAF" "SAF, TF" "CFin, CFid"
//! frame: {"event":"started","index":0,"faults":["SA0","SA1"]}
//! frame: {"event":"item","index":0,"ok":true,"outcome":{...}}
//! ...
//! frame: {"event":"completed","total":3,"succeeded":3,"failed":0}
//! ```
//!
//! Each line of the body is one self-describing JSON frame (see
//! `docs/WIRE_FORMAT.md`): `"started"` when a worker picks an item up,
//! `"item"` with the outcome summary (or the error) when it finishes,
//! and a terminal `"completed"` carrying the batch totals.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:8378".to_owned());
    let lists: Vec<String> = args.collect();
    if lists.is_empty() {
        eprintln!("usage: stream_client [HOST:PORT] \"FAULT LIST\" [\"FAULT LIST\"...]");
        std::process::exit(2);
    }

    // One request document per fault-list argument; a single entry like
    // "SAF, TF" expands server-side exactly like the CLI parser.
    let body = format!(
        "[{}]",
        lists
            .iter()
            .map(|list| format!("{{\"faults\": [\"{}\"]}}", list.replace('"', "")))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut stream = TcpStream::connect(&addr)?;
    write!(
        stream,
        "POST /v1/stream HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;

    let mut reader = BufReader::new(stream);

    // ---- response head --------------------------------------------------
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if !status_line.starts_with("HTTP/1.1 200") {
        // Validation failures arrive buffered (Content-Length), so the
        // rest of the stream is the structured error document.
        let mut rest = String::new();
        reader.read_to_string(&mut rest)?;
        let error_body = rest.rsplit("\r\n\r\n").next().unwrap_or(&rest);
        eprintln!("daemon answered {}: {error_body}", status_line.trim());
        std::process::exit(1);
    }
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        if header.trim().is_empty() {
            break;
        }
        if header
            .to_ascii_lowercase()
            .starts_with("transfer-encoding: chunked")
        {
            chunked = true;
        }
    }

    // ---- body: one JSON frame per line ----------------------------------
    // The daemon flushes every frame as its own chunk, so each iteration
    // observes progress in real time — chunk sizes are read and the
    // payload re-split on newlines (one chunk is one line today, but the
    // coding does not promise that).
    let mut pending = String::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size = usize::from_str_radix(size_line.trim(), 16)?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            pending.push_str(std::str::from_utf8(&chunk[..size])?);
            while let Some(newline) = pending.find('\n') {
                println!("frame: {}", &pending[..newline]);
                pending.drain(..=newline);
            }
        }
    } else {
        // An HTTP/1.0-style peer fallback: EOF-delimited raw lines.
        for line in reader.lines() {
            println!("frame: {}", line?);
        }
    }
    Ok(())
}
