//! The typed request/outcome API and the batch service layer: generate
//! tests for several fault lists concurrently, with progress events and
//! JSON output.
//!
//! ```text
//! cargo run --example batch_service
//! ```

use marchgen::json::ToJson;
use marchgen::prelude::*;
use marchgen::service::BatchEvent;
use marchgen::SolverChoice;

fn main() {
    let requests: Vec<GenerateRequest> = ["SAF", "SAF, TF", "SAF, TF, CFin", "CFid"]
        .iter()
        .map(|list| {
            GenerateRequest::from_fault_list(list)
                .expect("catalog lists parse")
                .with_solver(SolverChoice::HeldKarp)
        })
        .collect();

    let results = Batch::new()
        .threads(4)
        .run_with_progress(requests, |event| {
            if let BatchEvent::Finished { index, outcome } = event {
                eprintln!(
                    "request {index}: {}n in {} µs",
                    outcome.complexity(),
                    outcome.diagnostics.total_micros()
                );
            }
        });

    for result in results {
        let outcome = result.expect("catalog lists generate");
        println!("{}", outcome.to_json_string());
    }
}
