//! Reproduces the paper's figures as Graphviz DOT plus the §4 worked
//! example end to end:
//!
//! * Figure 1 — the fault-free two-cell machine `M0`,
//! * Figure 2 — `M1`, the CFid ⟨↑,0⟩ machine (faulty edge in bold red),
//! * Figure 3 — the BFE split of ⟨↑,0⟩,
//! * Figure 4 — the Test Pattern Graph of `{⟨↑,1⟩, ⟨↑,0⟩}`,
//! * the optimal GTS and the resulting 8n March test.
//!
//! ```sh
//! cargo run --example tpg_figure4
//! ```

use marchgen::faults::{bfe, catalog, requirements_for, TransitionDir};
use marchgen::generator::gts::Gts;
use marchgen::model::{dot, TwoCellMachine};
use marchgen::prelude::*;
use marchgen::tpg::{plan_tour, StartPolicy, Tpg};

fn main() {
    // Figure 1: M0.
    let m0 = TwoCellMachine::fault_free();
    println!("// ---- Figure 1: M0 (fault-free two-cell RAM) ----");
    println!("{}", dot::render(&m0, "M0"));

    // Figure 2: M1 = CFid<↑,0> with aggressor i.
    let (label, m1) = catalog::machines(FaultModel::CouplingIdempotent(
        TransitionDir::Up,
        marchgen::model::Bit::Zero,
    ))
    .into_iter()
    .next()
    .expect("pair faults have machines");
    println!("// ---- Figure 2: M1 = {label} ----");
    println!("{}", dot::render(&m1, "M1"));

    // Figure 3: BFE split.
    println!("// ---- Figure 3: BFEs of CFid<↑,0> ----");
    for (k, b) in bfe::extract(&m1).iter().enumerate() {
        println!(
            "// BFE {}: {} --{}--> {} (fault-free successor {})",
            k + 1,
            b.diff.state,
            b.diff.op,
            b.diff.faulty.next,
            b.diff.good.next
        );
        for tp in b.test_patterns() {
            println!("//   TP: {tp}");
        }
    }

    // Figure 4: TPG of {⟨↑,1⟩, ⟨↑,0⟩}.
    let models = parse_fault_list("CFid<u,0>, CFid<u,1>").expect("parses");
    let tps: Vec<TestPattern> = requirements_for(&models)
        .iter()
        .map(|r| r.alternatives[0])
        .collect();
    let tpg = Tpg::new(tps.clone());
    println!("// ---- Figure 4: TPG for {{⟨↑,1⟩, ⟨↑,0⟩}} ----");
    println!("{}", tpg.to_dot("TPG"));

    // §4 worked example: optimal constrained tour → GTS → March test.
    let plan = plan_tour(&tpg, StartPolicy::Uniform, 16)
        .into_iter()
        .next()
        .expect("tours exist");
    let tour: Vec<TestPattern> = plan.order.iter().map(|&k| tps[k]).collect();
    let gts = Gts::from_tour(&tour);
    println!("// ---- Section 4 worked example ----");
    println!("// GTS ({} ops): {}", gts.len(), gts);
    let test = marchgen::generator::schedule_tour(&tour).expect("schedules");
    println!("// March test: {}  ({}n)", test, test.complexity());
}
