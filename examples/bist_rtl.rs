//! End-to-end BIST hardware generation: fault list in, synthesizable
//! SystemVerilog out. Generates the paper's March C−-class test from the
//! classic five-model fault list, verifies it, compiles it to RTL (one
//! FSM state per March element, BIST wrapper, self-checking testbench)
//! and runs the offline SV sanity lint over the result.
//!
//! ```sh
//! cargo run --example bist_rtl > march_c_minus.sv
//! ```

use marchgen::prelude::*;
use marchgen::rtl::{emit_sv, lint_sv, RtlOptions};

fn main() {
    let outcome = generate(
        &GenerateRequest::from_fault_list("SAF, TF, ADF, CFin, CFid").expect("catalog list"),
    )
    .expect("catalog fault lists always generate");
    assert!(outcome.verified, "generated test must verify before RTL");
    eprintln!(
        "march test: {} ({}n, {} elements)",
        outcome.test,
        outcome.test.complexity(),
        outcome.test.element_count()
    );

    let options = RtlOptions::default()
        .with_name("march_c_minus")
        .with_addr_width(10)
        .with_data_width(8);
    let sv = emit_sv(&outcome.test, &options).expect("verified tests emit");

    let issues = lint_sv(&sv);
    assert!(issues.is_empty(), "emitted RTL must lint clean: {issues:?}");
    eprintln!(
        "emitted {} lines of SystemVerilog, lint clean",
        sv.lines().count()
    );

    print!("{sv}");
}
