//! User-defined fault models — the paper's "possibly add new user-defined
//! faults" (§1): describe an arbitrary faulty behaviour as a two-cell
//! Mealy machine, derive its Basic Fault Effects and Test Patterns
//! automatically (§3, Figure 3), and generate a March test for it.
//!
//! The example invents a **"write-1-leak"** fault: writing `1` into the
//! lower-addressed cell of a pair also forces the higher-addressed cell
//! to `1` (a one-directional bridging defect), in both address orders.
//!
//! ```sh
//! cargo run --example custom_fault
//! ```

use marchgen::faults::bfe;
use marchgen::model::{Bit, Cell, MemOp, PairState, Tri, TwoCellMachine};
use marchgen::prelude::*;
use marchgen::tpg::{plan_tour, StartPolicy, Tpg};

fn write1_leak(aggressor: Cell) -> TwoCellMachine {
    let m0 = TwoCellMachine::fault_free();
    let victim = aggressor.other();
    let mut machine = m0.clone();
    for state in PairState::all_known() {
        let good = m0.transition(state, MemOp::write(aggressor, Bit::One)).next;
        machine = machine.with_delta(
            state,
            MemOp::write(aggressor, Bit::One),
            good.with(victim, Tri::One),
        );
    }
    machine
}

fn main() {
    // 1. Model the fault in both address orders and derive requirements.
    let mut tps: Vec<TestPattern> = Vec::new();
    for aggr in [Cell::I, Cell::J] {
        let machine = write1_leak(aggr);
        let bfes = bfe::extract(&machine);
        println!("aggressor {aggr}: {} BFE(s)", bfes.len());
        let req = bfe::derive_requirement(&machine, format!("write1-leak (aggr {aggr})"))
            .expect("the fault is observable");
        println!("  requirement: {req}");
        // take one alternative per requirement (all alternatives work)
        tps.push(req.alternatives[0]);
    }

    // 2. Build the TPG and an optimal tour (paper §4).
    let tpg = Tpg::new(tps);
    println!("\nTPG:\n{}", tpg.to_dot("write1_leak"));
    let plan = plan_tour(&tpg, StartPolicy::Uniform, 16)
        .into_iter()
        .next()
        .expect("plan exists");
    let tour: Vec<TestPattern> = plan.order.iter().map(|&k| tpg.test_patterns()[k]).collect();

    // 3. Schedule the tour into a March test.
    let test = marchgen::generator::schedule_tour(&tour).expect("tour schedules");
    println!("march test: {}  ({}n)", test, test.complexity());
    assert_eq!(test.check_consistency(), Ok(()));

    // 4. Independently cross-check with the simulator: the derived test
    //    must catch the behaviourally-equivalent catalog fault CFid<↑,1>
    //    (write-1-leak is exactly its ↑-triggered forcing).
    let models = parse_fault_list("CFid<u,1>").expect("parses");
    assert!(
        covers_all(&test, &models, 4),
        "derived test covers the equivalent catalog fault"
    );
    println!("simulator cross-check: covers CFid<↑,1> on a 4-cell memory ✓");
}
