//! Regenerates **Table 3** of the paper: for each fault list, the
//! generated March test, its complexity, the generation time, and the
//! equivalent known March test — plus the simulator's verification and
//! the set-covering non-redundancy verdict (§6).
//!
//! ```sh
//! cargo run --release --example table3
//! ```

use marchgen::prelude::*;
use marchgen::sim::matrix::CoverageMatrix;
use std::time::Instant;

struct Row {
    label: &'static str,
    faults: &'static str,
    paper_complexity: usize,
    known: &'static str,
}

const ROWS: &[Row] = &[
    Row {
        label: "SAF",
        faults: "SAF",
        paper_complexity: 4,
        known: "MATS",
    },
    Row {
        label: "SAF,TF",
        faults: "SAF, TF",
        paper_complexity: 5,
        known: "MATS+",
    },
    Row {
        label: "SAF,TF,ADF",
        faults: "SAF, TF, ADF",
        paper_complexity: 6,
        known: "MATS++",
    },
    Row {
        label: "SAF,TF,ADF,CFin",
        faults: "SAF, TF, ADF, CFin",
        paper_complexity: 6,
        known: "March X",
    },
    Row {
        label: "SAF,TF,ADF,CFin,CFid",
        faults: "SAF, TF, ADF, CFin, CFid",
        paper_complexity: 10,
        known: "March C-",
    },
    Row {
        label: "CFid<u,1>,CFid<d,1>",
        faults: "CFid<u,1>, CFid<d,1>",
        paper_complexity: 5,
        known: "(not found)",
    },
];

fn main() {
    println!(
        "{:<22} {:<42} {:>5} {:>6} {:>10}  {:<11} verdicts",
        "Fault list", "Generated March Test", "k", "paper", "time", "known equiv"
    );
    println!("{}", "-".repeat(118));
    for row in ROWS {
        let models = parse_fault_list(row.faults).expect("row lists parse");
        let start = Instant::now();
        let outcome = Generator::new(models.clone()).run().expect("rows generate");
        let elapsed = start.elapsed();

        // §6 verification: coverage matrix + set covering non-redundancy.
        let cm = CoverageMatrix::build(&outcome.test, &models, 4);
        let nr = cm.non_redundancy();

        // Comparator: same complexity and same coverage as the known test.
        let known_matches = known::by_name(row.known)
            .map(|k| k.complexity() == outcome.test.complexity() && covers_all(&k, &models, 4))
            .map_or("-".to_string(), |same| {
                if same {
                    "match".to_string()
                } else {
                    "differs".to_string()
                }
            });

        println!(
            "{:<22} {:<42} {:>4}n {:>5}n {:>10.2?}  {:<11} verified={} blocks_needed={}/{} {}",
            row.label,
            outcome.test.to_string(),
            outcome.test.complexity(),
            row.paper_complexity,
            elapsed,
            row.known,
            outcome.verified,
            nr.minimum_cover,
            nr.useful_blocks,
            known_matches,
        );
        assert_eq!(
            outcome.test.complexity(),
            row.paper_complexity,
            "row {} diverges from the paper",
            row.label
        );
    }
    println!("\nAll rows reproduce the paper's complexities.");
}
