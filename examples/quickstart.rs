//! Quickstart: generate a verified, minimal March test for a fault list.
//!
//! ```sh
//! cargo run --example quickstart -- "SAF, TF, CFin"
//! ```
//!
//! With no argument it runs the paper's headline fault list (Table 3,
//! row 5).

use marchgen::prelude::*;

fn main() {
    let list = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SAF, TF, ADF, CFin, CFid".to_string());

    let generator = match Generator::from_fault_list(&list) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot parse fault list: {e}");
            std::process::exit(1);
        }
    };

    println!("fault list : {list}");
    let outcome = generator.run().expect("fault list expands to requirements");

    println!("march test : {}", outcome.test);
    println!("complexity : {}n", outcome.test.complexity());
    println!("GTS        : {}", outcome.gts);
    println!("tour       : {} test patterns", outcome.tour.len());
    for tp in &outcome.tour {
        println!("             {tp}");
    }
    println!("verified   : {}", outcome.verified);
    if let Some(nr) = outcome.non_redundant {
        println!("non-redund.: {nr}");
    }
    if let Some(report) = &outcome.report {
        println!("{report}");
    }
}
