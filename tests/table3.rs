//! Integration reproduction of the paper's **Table 3**: every row's fault
//! list must generate a March test with the published complexity,
//! verified complete by the fault simulator and non-redundant by both the
//! set-covering statement (§6) and operation-deletion analysis.

use marchgen::prelude::*;
use marchgen::sim::matrix::CoverageMatrix;
use marchgen::sim::redundancy;

struct Row {
    faults: &'static str,
    paper_complexity: usize,
    known_equivalent: Option<&'static str>,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            faults: "SAF",
            paper_complexity: 4,
            known_equivalent: Some("MATS"),
        },
        Row {
            faults: "SAF, TF",
            paper_complexity: 5,
            known_equivalent: Some("MATS+"),
        },
        Row {
            faults: "SAF, TF, ADF",
            paper_complexity: 6,
            known_equivalent: Some("MATS++"),
        },
        Row {
            faults: "SAF, TF, ADF, CFin",
            paper_complexity: 6,
            known_equivalent: Some("March X"),
        },
        Row {
            faults: "SAF, TF, ADF, CFin, CFid",
            paper_complexity: 10,
            known_equivalent: Some("March C-"),
        },
        // Row 6: the published 5n test covers the victim-forced-to-one
        // idempotent coupling subset; see DESIGN.md for the decoding.
        Row {
            faults: "CFid<u,1>, CFid<d,1>",
            paper_complexity: 5,
            known_equivalent: None,
        },
    ]
}

fn generate(faults: &str) -> (Outcome, Vec<FaultModel>) {
    let models = parse_fault_list(faults).expect("row parses");
    let outcome = Generator::new(models.clone()).run().expect("row generates");
    (outcome, models)
}

#[test]
fn row1_saf_is_4n() {
    let (out, _) = generate("SAF");
    assert_eq!(out.test.complexity(), 4, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn row2_saf_tf_is_5n() {
    let (out, _) = generate("SAF, TF");
    assert_eq!(out.test.complexity(), 5, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn row3_saf_tf_adf_is_6n() {
    let (out, _) = generate("SAF, TF, ADF");
    assert_eq!(out.test.complexity(), 6, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn row4_with_cfin_is_6n() {
    let (out, _) = generate("SAF, TF, ADF, CFin");
    assert_eq!(out.test.complexity(), 6, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn row5_with_cfid_is_10n() {
    let (out, _) = generate("SAF, TF, ADF, CFin, CFid");
    assert_eq!(out.test.complexity(), 10, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn row6_cfid_subset_is_5n() {
    let (out, _) = generate("CFid<u,1>, CFid<d,1>");
    assert_eq!(out.test.complexity(), 5, "{}", out.test);
    assert!(out.verified);
}

#[test]
fn all_rows_are_operationally_non_redundant() {
    for row in rows() {
        let (out, models) = generate(row.faults);
        assert_eq!(
            out.non_redundant,
            Some(true),
            "{}: {} has a deletable operation",
            row.faults,
            out.test
        );
        assert!(redundancy::is_non_redundant(&out.test, &models, 4));
    }
}

#[test]
fn all_rows_pass_the_section6_set_covering_statement() {
    for row in rows() {
        let (out, models) = generate(row.faults);
        let cm = CoverageMatrix::build(&out.test, &models, 4);
        assert!(
            cm.all_columns_covered(),
            "{}: {}\n{}",
            row.faults,
            out.test,
            cm
        );
        let verdict = cm.non_redundancy();
        assert!(
            verdict.minimum_cover == verdict.useful_blocks,
            "{}: set covering found a redundant block in {} ({} of {} needed)",
            row.faults,
            out.test,
            verdict.minimum_cover,
            verdict.useful_blocks
        );
    }
}

#[test]
fn generated_tests_match_known_equivalents() {
    for row in rows() {
        let Some(name) = row.known_equivalent else {
            continue;
        };
        let (out, models) = generate(row.faults);
        let known_test = known::by_name(name).expect("library test exists");
        assert_eq!(
            out.test.complexity(),
            known_test.complexity(),
            "{}: complexity differs from {name}",
            row.faults
        );
        if name == "MATS+" {
            // Classical theory: MATS+ covers SAF+AF but *not* TF (its
            // trailing w0 is never verified). The paper's row-2
            // "equivalent" is complexity-equivalence only; our verified
            // 5n test is strictly stronger. Recorded in EXPERIMENTS.md.
            assert!(
                !covers_all(&known_test, &models, 4),
                "MATS+ unexpectedly covers TF — simulator semantics drifted"
            );
        } else {
            // Rows 1, 3, 4, 5: the comparators genuinely cover their
            // fault lists — a cross-validation of the fault modelling.
            assert!(
                covers_all(&known_test, &models, 4),
                "{name} should cover {}",
                row.faults
            );
        }
    }
}

#[test]
fn paper_complexities_summary() {
    let got: Vec<usize> = rows()
        .iter()
        .map(|r| generate(r.faults).0.test.complexity())
        .collect();
    let want: Vec<usize> = rows().iter().map(|r| r.paper_complexity).collect();
    assert_eq!(got, want, "Table 3 complexity column");
}
