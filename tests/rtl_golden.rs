//! Golden-file pinning of the SystemVerilog BIST backend: every test in
//! the classical `march::known` catalog is compiled to RTL and compared
//! byte-for-byte against a checked-in golden under
//! `tests/goldens/rtl/<slug>.sv`. Any intentional change to the emitters
//! regenerates the whole set with
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test rtl_golden
//! ```
//!
//! and shows up in review as a plain-text diff of the affected `.sv`
//! files. Every emitted bundle is also run through the offline
//! token-level sanity lint ([`marchgen::rtl::lint_sv`]) — no simulator
//! or synthesis tool in CI — and the `marchgen codegen --lang sv` CLI
//! is checked to produce the exact same bytes as the library call.

use marchgen::march::codegen::sanitize_ident;
use marchgen::march::known;
use marchgen::rtl::{emit_sv, lint_sv, RtlOptions};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/rtl")
}

/// Catalog name → golden file stem: `+`/`-` spelled out (so MATS, MATS+
/// and MATS++ stay distinct through sanitization), then the shared
/// identifier rewrite, lowercased. The same string is used as the
/// module base name inside the golden, so the file is self-describing.
fn slug(name: &str) -> String {
    let spelled = name.replace('+', "_plus").replace('-', "_minus");
    sanitize_ident(&spelled).to_ascii_lowercase()
}

/// The options every golden is emitted with: defaults, module base name
/// set to the catalog slug.
fn golden_options(slug: &str) -> RtlOptions {
    RtlOptions::default().with_name(slug)
}

#[test]
fn catalog_slugs_are_unique_filenames() {
    let mut seen = BTreeSet::new();
    for (name, _) in known::all() {
        let slug = slug(name);
        assert!(
            seen.insert(slug.clone()),
            "catalog names {name:?} collide on golden slug {slug:?}"
        );
    }
}

/// The core pin: emitted SystemVerilog for the whole catalog is
/// byte-identical to the checked-in goldens, and every bundle passes
/// the sanity lint. `UPDATE_GOLDENS=1` rewrites the set instead.
#[test]
fn catalog_rtl_matches_goldens_and_lints_clean() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut expected_files = BTreeSet::new();
    for (name, test) in known::all() {
        let slug = slug(name);
        let sv = emit_sv(&test, &golden_options(&slug))
            .unwrap_or_else(|e| panic!("{name} must emit: {e}"));

        let issues = lint_sv(&sv);
        assert!(issues.is_empty(), "{name} must lint clean: {issues:?}");

        let path = dir.join(format!("{slug}.sv"));
        expected_files.insert(format!("{slug}.sv"));
        if update {
            std::fs::write(&path, &sv).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {path:?} for {name} ({e}); \
                 regenerate with UPDATE_GOLDENS=1 cargo test --test rtl_golden"
            )
        });
        assert_eq!(
            sv, golden,
            "{name}: emitted SystemVerilog diverged from {path:?}; if the \
             change is intentional, regenerate with UPDATE_GOLDENS=1 \
             cargo test --test rtl_golden and review the diff"
        );
    }

    // No stale goldens: every file in the directory belongs to a
    // catalog test, so a renamed test cannot leave an orphan pin.
    let on_disk: BTreeSet<String> = std::fs::read_dir(&dir)
        .expect("golden dir exists")
        .map(|entry| entry.expect("dir entry").file_name().into_string().unwrap())
        .collect();
    assert_eq!(
        on_disk, expected_files,
        "tests/goldens/rtl holds exactly one .sv per catalog test"
    );
}

/// `marchgen codegen <name> --lang sv` emits the exact bytes of the
/// library call with the same options — the CLI is a transport for the
/// backend, not a second implementation.
#[test]
fn cli_codegen_sv_matches_library_bytes() {
    for (name, test) in known::all().into_iter().take(3) {
        let slug = slug(name);
        let expected = emit_sv(&test, &golden_options(&slug)).expect("catalog tests emit");
        let cli = Command::new(env!("CARGO_BIN_EXE_marchgen"))
            .args(["codegen", name, "--lang", "sv", "--name", &slug])
            .output()
            .expect("run marchgen CLI");
        assert!(
            cli.status.success(),
            "codegen {name:?} failed: {}",
            String::from_utf8_lossy(&cli.stderr)
        );
        let stdout = String::from_utf8(cli.stdout).expect("utf-8 SV");
        assert_eq!(stdout, expected, "{name}: CLI bytes diverge from emit_sv");
    }
}

/// The `--json` envelope carries the same code, plus the test notation
/// and sanitized name — the machine-readable twin of the raw emission.
#[test]
fn cli_codegen_json_envelope_carries_the_same_code() {
    use marchgen::json::Json;
    let test = known::march_c_minus();
    let expected = emit_sv(&test, &golden_options("march_c_minus")).expect("emits");
    let cli = Command::new(env!("CARGO_BIN_EXE_marchgen"))
        .args([
            "codegen",
            "March C-",
            "--lang",
            "sv",
            "--name",
            "march_c_minus",
            "--json",
        ])
        .output()
        .expect("run marchgen CLI");
    assert!(cli.status.success());
    let doc = Json::parse(&String::from_utf8(cli.stdout).unwrap()).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_int), Some(1));
    assert_eq!(doc.get("lang").and_then(Json::as_str), Some("sv"));
    assert_eq!(
        doc.get("name").and_then(Json::as_str),
        Some("march_c_minus")
    );
    assert_eq!(
        doc.get("test").and_then(Json::as_str),
        Some(test.to_string().as_str())
    );
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some(expected.as_str())
    );
}

/// Knob pass-through: widths, delay cycles and `--no-testbench` reach
/// the emitted parameters (spot-check on one catalog test).
#[test]
fn cli_codegen_sv_knobs_shape_the_output() {
    let cli = Command::new(env!("CARGO_BIN_EXE_marchgen"))
        .args([
            "codegen",
            "March G",
            "--lang",
            "sv",
            "--name",
            "g",
            "--addr-width",
            "6",
            "--data-width",
            "16",
            "--delay-cycles",
            "200",
            "--no-testbench",
        ])
        .output()
        .expect("run marchgen CLI");
    assert!(cli.status.success());
    let sv = String::from_utf8(cli.stdout).unwrap();
    assert!(sv.contains("ADDR_WIDTH = 6"), "{sv}");
    assert!(sv.contains("DATA_WIDTH = 16"), "{sv}");
    assert!(sv.contains("DELAY_CYCLES = 200"), "{sv}");
    assert!(sv.contains("module g_patgen"), "{sv}");
    assert!(sv.contains("module g_bist"), "{sv}");
    assert!(
        !sv.contains("module g_tb"),
        "--no-testbench must drop the tb"
    );
    assert!(lint_sv(&sv).is_empty());
}
