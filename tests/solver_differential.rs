//! Differential suite over the ATSP solver registry: on every Test
//! Pattern Graph the fault catalog produces (up to 12 TPs), every
//! registered backend must plan tours of the exact optimal cost —
//! with the exact solvers (and the brute-force oracle where it fits)
//! as the reference. The sole exception is the one-shot `heuristic`
//! construction, which is held to a never-below-and-within-one bound
//! instead (it exists as a fast upper bound, not a tour planner).
//!
//! This is the cross-check that keeps the `SolverChoice::Auto` policy
//! honest: above the exact threshold Auto trusts the local search, and
//! this suite pins the local search to the exact optimum on the whole
//! catalog range where both can run.

use marchgen::atsp::{AtspInstance, AtspSolver, SolverRegistry, Tour};
use marchgen::faults::{dedupe_subsumed, parse_fault_list, requirements_for, FaultModel};
use marchgen::generator::ClassCombinations;
use marchgen::prelude::TestPattern;
use marchgen::tpg::{plan_tour_with, StartPolicy, Tpg};

/// Brute-force permutation oracle as an [`AtspSolver`], usable wherever
/// the instance (TPG + dummy node) stays within its 10-node cap.
struct BruteOracle;

impl AtspSolver for BruteOracle {
    fn name(&self) -> &str {
        "brute-oracle"
    }

    fn solve(&self, instance: &AtspInstance) -> Tour {
        marchgen::atsp::brute::solve(instance)
    }

    fn is_exact_for(&self, instance: &AtspInstance) -> bool {
        instance.len() <= 10
    }
}

/// Every distinct post-subsumption TP set (the memoized ATSP instances
/// the pipeline actually solves) for a fault list, capped like the
/// engine's default combination budget.
fn unique_tp_sets(faults: &str) -> Vec<Vec<TestPattern>> {
    let models = parse_fault_list(faults).expect("catalog lists parse");
    let requirements = requirements_for(&models);
    let limit = ClassCombinations::total(&requirements).min(64);
    let mut seen: Vec<Vec<TestPattern>> = Vec::new();
    for combo in ClassCombinations::range(&requirements, 0, limit) {
        let mut tps = dedupe_subsumed(&combo);
        tps.sort();
        if !seen.contains(&tps) {
            seen.push(tps);
        }
        // A bounded, deterministic sample per list keeps the sweep's
        // wall-clock inside tier-1 budgets; the global dedupe below
        // still yields a diverse instance population.
        if seen.len() >= 8 {
            break;
        }
    }
    seen
}

/// The catalog workloads: every model of the extended taxonomy alone
/// (classical, dynamic and linked), plus the paper's Table 3
/// combinations, the §4 worked example and mixed extended lists.
fn catalog_fault_lists() -> Vec<String> {
    let mut lists: Vec<String> = FaultModel::all_extended()
        .iter()
        .map(|m| m.name())
        .collect();
    for combo in [
        "SAF",
        "SAF, TF",
        "SAF, TF, ADF",
        "SAF, TF, SOF, ADF",
        "SAF, TF, ADF, CFin",
        "SAF, TF, ADF, CFin, CFid",
        "CFid<u,0>, CFid<u,1>",
        "CFid<u,1>, CFid<d,1>",
        "CFin, CFid",
        "SAF, TF, DRF",
        "dRDF, dDRDF, dIRF",
        "SAF, TF, dRDF",
        "LCF",
        "CFid, LCF<1>",
    ] {
        lists.push(combo.to_owned());
    }
    lists
}

/// Every registered solver (and the brute oracle where it fits) agrees
/// on the optimal tour cost — measured as the best GTS operation count,
/// which differs from the raw ATSP objective only by a fixed per-TP
/// offset — for every catalog TPG with at most 12 nodes, under both
/// start policies.
#[test]
fn all_registered_solvers_agree_on_catalog_tpgs() {
    let registry = SolverRegistry::default();
    let mut instances = 0usize;
    // The same post-subsumption TP set recurs across many fault lists
    // (single models are subsets of the combinations); solve each
    // distinct set once.
    let mut sweep: Vec<(String, Vec<TestPattern>)> = Vec::new();
    for faults in catalog_fault_lists() {
        for tps in unique_tp_sets(&faults) {
            if tps.is_empty() || tps.len() > 12 {
                continue;
            }
            if !sweep.iter().any(|(_, seen)| *seen == tps) {
                sweep.push((faults.clone(), tps));
            }
        }
    }
    for (faults, tps) in sweep {
        {
            let tpg = Tpg::new(tps);
            for policy in [StartPolicy::Uniform, StartPolicy::Free] {
                instances += 1;
                // Reference: the exact Held–Karp backend.
                let exact = plan_tour_with(
                    &tpg,
                    policy,
                    64,
                    registry.get("held-karp").expect("built-in").as_ref(),
                );
                let optimum = exact
                    .iter()
                    .map(|p| p.gts_ops)
                    .min()
                    .expect("catalog TPGs plan");
                for name in registry.names() {
                    let solver = registry.get(name).expect("registered");
                    let plans = plan_tour_with(&tpg, policy, 64, solver.as_ref());
                    let best = plans
                        .iter()
                        .map(|p| p.gts_ops)
                        .min()
                        .unwrap_or_else(|| panic!("{name} returned no plan ({faults})"));
                    if name == "heuristic" {
                        // The one-shot construction backend exists as a
                        // fast upper bound (it seeds branch-and-bound
                        // and the local search); it is optimal on
                        // almost — but provably not all — catalog TPGs.
                        // Its contract here: never below the optimum,
                        // and within one operation of it.
                        assert!(
                            best >= optimum && best <= optimum + 1,
                            "heuristic planned {best} ops vs optimum {optimum} \
                             on {faults:?} ({} TPs, {policy:?})",
                            tpg.len()
                        );
                        continue;
                    }
                    assert_eq!(
                        best,
                        optimum,
                        "{name} planned {best} ops vs optimum {optimum} \
                         on {faults:?} ({} TPs, {policy:?})",
                        tpg.len()
                    );
                }
                // The brute-force oracle double-checks the exact
                // backends themselves wherever it fits (TPG + dummy
                // within its 10-node cap).
                if tpg.len() < 10 {
                    let brute = plan_tour_with(&tpg, policy, 64, &BruteOracle);
                    let best = brute.iter().map(|p| p.gts_ops).min().expect("plans");
                    assert_eq!(best, optimum, "brute oracle disagrees on {faults:?}");
                }
            }
        }
    }
    assert!(
        instances >= 40,
        "the catalog sweep must exercise a real instance population, got {instances}"
    );
}

/// The full pipeline agrees too: for the paper's Table 3 workloads the
/// local-search backend produces a verified test of the same complexity
/// as the exact default.
#[test]
fn local_search_pipeline_matches_exact_on_table3_workloads() {
    use marchgen::{generate, GenerateRequest, SolverChoice};
    for faults in [
        "SAF",
        "SAF, TF",
        "CFid<u,0>, CFid<u,1>",
        "CFid<u,1>, CFid<d,1>",
    ] {
        let exact = generate(&GenerateRequest::from_fault_list(faults).unwrap()).unwrap();
        let local = generate(
            &GenerateRequest::from_fault_list(faults)
                .unwrap()
                .with_solver(SolverChoice::LocalSearch),
        )
        .unwrap();
        assert!(local.verified, "{faults}");
        assert_eq!(local.complexity(), exact.complexity(), "{faults}");
        assert_eq!(local.diagnostics.solver, "local-search");
    }
}
