//! The batch service layer is observationally equivalent to the
//! single-shot API: running the paper's Table 3 fault lists through
//! `Batch::run` produces the same tests as `Generator::run`, at the
//! paper's complexities.

use marchgen::prelude::*;
use marchgen::service::BatchEvent;
use marchgen_bench::TABLE3;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn batch_matches_single_shot_on_table3() {
    let requests: Vec<GenerateRequest> = TABLE3
        .iter()
        .map(|row| GenerateRequest::from_fault_list(row.faults).expect("Table 3 parses"))
        .collect();

    let events = AtomicUsize::new(0);
    let results = Batch::new().run_with_progress(requests, |event| {
        if matches!(
            event,
            BatchEvent::Finished { .. } | BatchEvent::Failed { .. }
        ) {
            events.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(events.load(Ordering::Relaxed), TABLE3.len());

    for (row, batched) in TABLE3.iter().zip(&results) {
        let batched = batched
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", row.label));
        let single = Generator::from_fault_list(row.faults)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(
            batched.complexity(),
            single.test.complexity(),
            "{}: batch and single-shot disagree",
            row.label
        );
        assert_eq!(batched.test, single.test, "{}", row.label);
        assert_eq!(batched.verified, single.verified, "{}", row.label);
        assert!(batched.verified, "{}: must verify", row.label);
        assert_eq!(
            batched.complexity(),
            row.paper_complexity,
            "{}: paper reports {}n",
            row.label,
            row.paper_complexity
        );
    }
}
