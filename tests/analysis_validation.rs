//! Cross-validation of the static detection-condition analyzer
//! (`march::analysis`, van de Goor's theorems) against the behavioural
//! fault simulator: whenever a *sufficient* condition holds for a test,
//! the simulator must confirm full coverage of the family. This guards
//! the theorem implementation and the simulator semantics against each
//! other.

use marchgen::march::analysis::{analyze, Conditions};
use marchgen::prelude::*;

type FamilyFlags = Vec<(&'static str, bool)>;

fn families(c: &Conditions) -> FamilyFlags {
    vec![
        ("SAF", c.saf),
        ("TF", c.tf),
        ("ADF", c.af),
        ("SOF", c.sof),
        ("DRF", c.drf),
    ]
}

#[test]
fn conditions_are_sufficient_for_simulated_coverage() {
    let n = 4;
    for (name, test) in known::all() {
        let conditions = analyze(&test);
        for (family, holds) in families(&conditions) {
            if holds {
                let models = parse_fault_list(family).expect("family parses");
                assert!(
                    covers_all(&test, &models, n),
                    "{name}: {family} condition holds but the simulator finds an escape"
                );
            }
        }
    }
}

#[test]
fn conditions_hold_on_generated_tests() {
    // The generator's outputs must satisfy the conditions of the families
    // they were generated for (where a condition exists).
    type Check = fn(&Conditions) -> bool;
    let cases: [(&str, Check); 4] = [
        ("SAF", |c| c.saf),
        ("SAF, TF", |c| c.saf && c.tf),
        ("SOF", |c| c.sof),
        ("DRF", |c| c.drf),
    ];
    for (list, check) in cases {
        let out = Generator::from_fault_list(list).unwrap().run().unwrap();
        assert!(out.verified, "{list}");
        let conditions = analyze(&out.test);
        assert!(
            check(&conditions),
            "{list}: generated test {} does not satisfy its own static condition",
            out.test
        );
    }
}

#[test]
fn af_condition_matches_simulator_on_the_library() {
    // For the classical library the AF condition is exact in both
    // directions (sufficient and, empirically here, necessary).
    let models = parse_fault_list("ADF").unwrap();
    for (name, test) in known::all() {
        let predicted = analyze(&test).af;
        let simulated = covers_all(&test, &models, 4);
        if predicted {
            assert!(simulated, "{name}: AF predicted but escapes found");
        }
        // Necessity holds for every library member except MATS-style
        // all-⇕ tests, which we skip (the condition is conservative).
        if simulated && test.elements().iter().any(|e| e.direction != Direction::Up) {
            // no strict assertion — conservativeness is allowed
        }
    }
}

#[test]
fn mats_plus_plus_sof_detection_under_latch_model() {
    // The latch-model subtlety recorded in EXPERIMENTS.md: ⇓(r1,w0,r0)
    // catches stuck-open cells because the leading read compares against
    // the *previous cell's* trailing read.
    let sof = parse_fault_list("SOF").unwrap();
    assert!(covers_all(&known::mats_plus_plus(), &sof, 4));
    assert!(analyze(&known::mats_plus_plus()).sof);
    // March X lacks any qualifying window and indeed escapes.
    assert!(!covers_all(&known::march_x(), &sof, 4));
    assert!(!analyze(&known::march_x()).sof);
}
