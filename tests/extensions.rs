//! Integration tests for the fault models beyond Table 3 — stuck-open,
//! data-retention and read faults (the extensions the paper's reference
//! [6] motivates) — and for pipeline configuration knobs.

use marchgen::prelude::*;
use marchgen::tpg::StartPolicy;

fn generate(list: &str) -> Outcome {
    Generator::from_fault_list(list)
        .expect("parses")
        .run()
        .expect("generates")
}

#[test]
fn stuck_open_generates_a_verified_test() {
    let out = generate("SOF");
    assert!(out.verified, "{}", out.test);
    // Detection needs the read-write-read element shape; 3 accesses is
    // the floor (r, w, r after an initializing write element).
    assert!(out.test.complexity() >= 3, "{}", out.test);
}

#[test]
fn data_retention_generates_delay_elements() {
    let out = generate("DRF");
    assert!(out.verified, "{}", out.test);
    assert!(
        out.test.delay_count() >= 2,
        "two decay directions: {}",
        out.test
    );
}

#[test]
fn read_destructive_family() {
    for list in ["RDF", "DRDF", "IRF"] {
        let out = generate(list);
        assert!(out.verified, "{list}: {}", out.test);
    }
}

#[test]
fn state_coupling_generates() {
    let out = generate("CFst");
    assert!(out.verified, "{}", out.test);
    // March C- covers CFst at 10n; the generator must not do worse.
    assert!(out.test.complexity() <= 10, "{}", out.test);
}

#[test]
fn kitchen_sink_static_faults() {
    // Every non-delay, non-SOF model at once.
    let out = generate("SAF, TF, ADF, CFin, CFid, CFst, RDF, DRDF, IRF");
    assert!(out.verified, "{}", out.test);
    // March SS covers the simple static faults at 22n; ours targets a
    // subset and must stay well under.
    assert!(out.test.complexity() <= 22, "{}", out.test);
}

#[test]
fn full_catalog_with_retention_and_sof() {
    let out = generate("SAF, TF, SOF, ADF, CFin, CFid, DRF");
    assert!(out.verified, "{}", out.test);
    assert!(out.test.delay_count() >= 2, "{}", out.test);
}

#[test]
fn free_start_policy_is_never_better_than_uniform_on_table3() {
    for list in ["SAF", "SAF, TF", "CFid<u,1>, CFid<d,1>"] {
        let uniform = generate(list);
        let free = Generator::from_fault_list(list)
            .unwrap()
            .start_policy(StartPolicy::Free)
            .run()
            .unwrap();
        assert!(free.verified);
        // f.4.4's point: the uniform constraint does not hurt, and it is
        // what yields the minimal March complexity.
        assert!(
            uniform.test.complexity() <= free.test.complexity(),
            "{list}: uniform {} vs free {}",
            uniform.test,
            free.test
        );
    }
}

#[test]
fn verification_reports_cover_every_requested_model() {
    let models = parse_fault_list("SAF, TF, CFin").unwrap();
    let out = Generator::new(models.clone()).run().unwrap();
    let report = out.report.expect("verification ran");
    assert_eq!(report.models.len(), models.len());
    assert!(report.complete());
    assert!(report.total_sites() > 0);
}

#[test]
fn generated_tests_also_verify_on_larger_memories() {
    // Verified on 4 cells during generation; spot-check on 6 cells.
    let out = generate("SAF, TF, CFin");
    let models = parse_fault_list("SAF, TF, CFin").unwrap();
    assert!(covers_all(&out.test, &models, 6), "{}", out.test);
}

#[test]
fn single_model_roundtrips() {
    // Each catalog family alone must generate and verify.
    for list in [
        "SA0",
        "SA1",
        "TF<u>",
        "TF<d>",
        "ADF<w>",
        "ADF<r>",
        "CFin<u>",
        "CFin<d>",
        "CFid<u,0>",
        "CFid<d,1>",
        "CFst<0,1>",
        "RDF<0>",
        "DRDF<1>",
        "IRF<0>",
        "DRF<1>",
    ] {
        let out = generate(list);
        assert!(out.verified, "{list}: {}", out.test);
        assert_eq!(out.non_redundant, Some(true), "{list}: {}", out.test);
    }
}
