//! Integration reproduction of the paper's §3–§4 worked example, end to
//! end across the crates: fault list `{⟨↑,1⟩, ⟨↑,0⟩}` → TPs (f.2.3) →
//! TPG (Figure 4) → constrained ATSP (f.4.4) → GTS → March test (§4.3),
//! with every intermediate artifact checked against the paper's text.

use marchgen::faults::{catalog, requirements_for, TransitionDir};
use marchgen::generator::gts::Gts;
use marchgen::generator::schedule_tour;
use marchgen::model::{Bit, TwoCellMachine};
use marchgen::prelude::*;
use marchgen::tpg::{plan_tour, StartPolicy, Tpg};

fn example_tps() -> Vec<TestPattern> {
    // Order: TP1, TP2 from ⟨↑,0⟩; TP3, TP4 from ⟨↑,1⟩ (paper numbering).
    let mut tps = Vec::new();
    for list in ["CFid<u,0>", "CFid<u,1>"] {
        let models = parse_fault_list(list).expect("parses");
        for req in requirements_for(&models) {
            assert_eq!(req.cardinality(), 1, "CFid BFEs have a single TP");
            tps.push(req.alternatives[0]);
        }
    }
    tps
}

/// f.2.3: TP1 = (01, w1i, r1j), TP2 = (10, w1j, r1i),
/// TP3 = (00, w1i, r0j), TP4 = (00, w1j, r0i).
#[test]
fn test_patterns_match_f23() {
    let tps = example_tps();
    let printed: Vec<String> = tps.iter().map(|tp| tp.to_string()).collect();
    assert_eq!(
        printed,
        vec![
            "(01, w1i, r1j)",
            "(10, w1j, r1i)",
            "(00, w1i, r0j)",
            "(00, w1j, r0i)",
        ]
    );
}

/// Figure 2: the faulty machine differs from M0 by one bolded edge.
#[test]
fn figure2_machine_has_one_extra_edge() {
    let m0 = TwoCellMachine::fault_free();
    let machines = catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
    assert_eq!(machines.len(), 2);
    for (label, m) in machines {
        assert_eq!(m0.diff(&m).len(), 1, "{label}");
        assert!(m.is_bfe(), "{label}");
    }
}

/// Figure 4: the TPG arc-weight multiset is {0×2, 1×4, 2×6}.
#[test]
fn figure4_weights() {
    let tpg = Tpg::new(example_tps());
    let mut weights: Vec<u32> = tpg.arcs().map(|(_, _, w)| w).collect();
    weights.sort_unstable();
    assert_eq!(weights, vec![0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
}

/// The §4 GTS: the paper's tour gives exactly
/// `w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j`.
#[test]
fn section4_gts_text() {
    let tps = example_tps();
    let tour = [tps[2], tps[1], tps[3], tps[0]];
    let gts = Gts::from_tour(&tour);
    assert_eq!(
        gts.to_string(),
        "w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j"
    );
}

/// All f.4.4-constrained optimal tours have 12 GTS operations, and each
/// schedules to an 8n March test.
#[test]
fn optimal_tours_schedule_to_8n() {
    let tps = example_tps();
    let tpg = Tpg::new(tps.clone());
    let plans = plan_tour(&tpg, StartPolicy::Uniform, 64);
    assert!(!plans.is_empty());
    let mut best = usize::MAX;
    for plan in plans {
        assert_eq!(plan.gts_ops, 12);
        let tour: Vec<TestPattern> = plan.order.iter().map(|&k| tps[k]).collect();
        let test = schedule_tour(&tour).expect("schedules");
        assert_eq!(test.check_consistency(), Ok(()));
        // Individual optimal tours may schedule a little above the
        // minimum (the pipeline keeps the best across all of them).
        assert!(
            test.complexity() <= 12,
            "tour scheduled unreasonably: {test}"
        );
        best = best.min(test.complexity());
    }
    assert_eq!(best, 8, "the best optimal tour realizes the paper's 8n");
}

/// The paper's final 8n test, via the full pipeline, with coverage
/// verified by simulation.
#[test]
fn pipeline_reproduces_8n() {
    let out = Generator::from_fault_list("CFid<u,0>, CFid<u,1>")
        .expect("parses")
        .run()
        .expect("generates");
    assert_eq!(out.test.complexity(), 8, "{}", out.test);
    assert!(out.verified);
    assert_eq!(out.non_redundant, Some(true));
    // The paper's concrete answer is among the optimal solutions; ours
    // must match it up to the free direction of the background element.
    let paper: MarchTest = "⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1)"
        .parse()
        .unwrap();
    let models = parse_fault_list("CFid<u,0>, CFid<u,1>").unwrap();
    assert!(
        covers_all(&paper, &models, 4),
        "the paper's own test simulates clean"
    );
    assert_eq!(out.test.complexity(), paper.complexity());
}

/// The paper's 8n answer itself is operationally non-redundant.
#[test]
fn papers_8n_answer_is_non_redundant() {
    let paper: MarchTest = "⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1)"
        .parse()
        .unwrap();
    let models = parse_fault_list("CFid<u,0>, CFid<u,1>").unwrap();
    assert!(marchgen::sim::redundancy::is_non_redundant(
        &paper, &models, 4
    ));
}
