//! Serialization properties of the typed API surface: random
//! [`GenerateRequest`]s and [`GenerateOutcome`]s survive a JSON
//! round-trip losslessly, and [`MarchTest`]'s textual notation
//! round-trips through `Display` → parse (deterministic
//! `marchgen-testkit` harness).

use marchgen::faults::requirements_for;
use marchgen::json::{FromJson, ToJson};
use marchgen::prelude::*;
use marchgen::sim::coverage::coverage_report;
use marchgen::tpg::StartPolicy;
use marchgen::SolverChoice;
use marchgen_testkit::{run_cases, Rng};

fn random_request(rng: &mut Rng) -> GenerateRequest {
    let all = FaultModel::all_classical();
    let faults = rng.vec(1, 6, |rng| *rng.pick(&all));
    let solver = match rng.range(0, 6) {
        0 => SolverChoice::Auto,
        1 => SolverChoice::HeldKarp,
        2 => SolverChoice::BranchBound,
        3 => SolverChoice::Heuristic,
        4 => SolverChoice::LocalSearch,
        _ => SolverChoice::Custom(format!("plugin-{}", rng.range(0, 100))),
    };
    let policy = if rng.flip() {
        StartPolicy::Uniform
    } else {
        StartPolicy::Free
    };
    GenerateRequest::new(faults)
        .with_solver(solver)
        .with_start_policy(policy)
        .with_tour_cap(rng.range(1, 200))
        .with_verify_cells(rng.range(0, 9))
        .with_compact(rng.flip())
        .with_check_redundancy(rng.flip())
        .with_max_combinations(rng.range(1, 10_000))
        .with_verifier(match rng.range(0, 4) {
            0 => VerifierChoice::Auto,
            1 => VerifierChoice::Scalar,
            2 => VerifierChoice::BitParallel,
            _ => VerifierChoice::Wide,
        })
        .with_search_threads(rng.range(0, 9))
}

/// A synthetic but structurally faithful outcome: real TPs from the
/// catalog, a real coverage report, random diagnostics.
fn random_outcome(rng: &mut Rng) -> GenerateOutcome {
    let all = FaultModel::all_classical();
    let models = rng.vec(1, 4, |rng| *rng.pick(&all));
    let reqs = requirements_for(&models);
    let tour: Vec<TestPattern> = reqs
        .iter()
        .map(|r| r.alternatives[rng.range(0, r.cardinality().max(1))])
        .collect();
    let test = if rng.flip() {
        known::march_c_minus()
    } else {
        known::mats_plus()
    };
    let report = if rng.flip() {
        Some(coverage_report(&test, &models, rng.range(2, 5)))
    } else {
        None
    };
    GenerateOutcome {
        verified: report.as_ref().map(|r| r.complete()).unwrap_or(false),
        report,
        test,
        tour,
        non_redundant: if rng.flip() { Some(rng.flip()) } else { None },
        diagnostics: Diagnostics {
            solver: ["auto", "held-karp", "local-search"][rng.range(0, 3)].to_owned(),
            solver_iterations: rng.next_u64() % 10_000,
            solver_restarts: rng.next_u64() % 64,
            combinations: rng.range(1, 5000),
            unique_tp_sets: rng.range(1, 500),
            tours_tried: rng.range(1, 500),
            candidates: rng.range(1, 100),
            candidate_complexities: rng.vec(0, 8, |rng| rng.range(4, 30)),
            expand_micros: rng.next_u64() % 1_000_000,
            search_micros: rng.next_u64() % 1_000_000,
            verify_micros: rng.next_u64() % 1_000_000,
            shard_micros: rng.vec(0, 6, |rng| rng.next_u64() % 1_000_000),
            verifier: ["", "simulator", "bitsim", "widesim"][rng.range(0, 4)].to_owned(),
            verify_shard_micros: rng.vec(0, 8, |rng| rng.next_u64() % 1_000_000),
            cache_hit: rng.flip(),
        },
    }
}

/// `GenerateRequest` → JSON → `GenerateRequest` is the identity.
#[test]
fn request_json_roundtrip_property() {
    run_cases("request_json_roundtrip", 128, |rng| {
        let request = random_request(rng);
        let text = request.to_json_string();
        let back =
            GenerateRequest::from_json_str(&text).unwrap_or_else(|e| panic!("{e} in {text}"));
        assert_eq!(back, request, "{text}");
        // Pretty-printing decodes to the same value.
        let pretty = GenerateRequest::from_json_str(&request.to_json_pretty()).unwrap();
        assert_eq!(pretty, request);
    });
}

/// `GenerateOutcome` → JSON → `GenerateOutcome` is the identity,
/// including coverage reports with escapes.
#[test]
fn outcome_json_roundtrip_property() {
    run_cases("outcome_json_roundtrip", 64, |rng| {
        let outcome = random_outcome(rng);
        let text = outcome.to_json_pretty();
        let back =
            GenerateOutcome::from_json_str(&text).unwrap_or_else(|e| panic!("{e} in {text}"));
        assert_eq!(back, outcome, "{text}");
    });
}

/// A real engine outcome (escapes included) also survives the trip.
#[test]
fn engine_outcome_roundtrips() {
    // MATS misses TF — the report carries real escape sites.
    let request = GenerateRequest::from_fault_list("SAF, TF, CFid<u,1>")
        .unwrap()
        .with_check_redundancy(true);
    let outcome = generate(&request).unwrap();
    let back = GenerateOutcome::from_json_str(&outcome.to_json_string()).unwrap();
    assert_eq!(back, outcome);
}

/// `MarchTest` Display → parse is the identity on random tests, both in
/// arrow and ASCII notation.
#[test]
fn march_display_parse_roundtrip_property() {
    let ops = [MarchOp::W0, MarchOp::W1, MarchOp::R0, MarchOp::R1];
    let dirs = [Direction::Up, Direction::Down, Direction::Any];
    run_cases("march_display_parse_roundtrip", 256, |rng| {
        let elements = rng.vec(1, 6, |rng| {
            let dir = *rng.pick(&dirs);
            let element_ops = rng.vec(1, 5, |rng| *rng.pick(&ops));
            MarchElement::new(dir, element_ops)
        });
        let test = MarchTest::new(elements);
        let display: MarchTest = test
            .to_string()
            .parse()
            .unwrap_or_else(|e| panic!("{e}: {test}"));
        assert_eq!(display, test);
        let ascii: MarchTest = test
            .to_ascii()
            .parse()
            .unwrap_or_else(|e| panic!("{e}: {}", test.to_ascii()));
        assert_eq!(ascii, test);
    });
}
