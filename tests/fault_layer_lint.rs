//! Source-level lint guarding the tentpole invariant of the primitive
//! refactor: **per-model fault knowledge lives in exactly one lowering
//! module**. Outside `marchgen_faults::lowering` (and the enum's own
//! definition/grammar files), no non-test production source may name a
//! `FaultModel` variant — the simulators, generator, cache and daemon
//! must stay behaviour-driven, so adding a fault class touches the
//! taxonomy and the lowering table and nothing else.
//!
//! CI job `fault-layer-lint` runs this suite; locally it is part of
//! the ordinary `cargo test` sweep.

use std::fs;
use std::path::{Path, PathBuf};

/// Files allowed to name `FaultModel` variants in non-test code, with
/// the reason each is exempt. Everything else in the workspace fails
/// the lint.
const ALLOWED: &[(&str, &str)] = &[
    (
        "crates/faults/src/model.rs",
        "defines the enum itself (taxonomy, ordering, labels)",
    ),
    (
        "crates/faults/src/parse.rs",
        "the fault-list grammar maps tokens to variants",
    ),
    (
        "crates/faults/src/lowering.rs",
        "THE single lowering module: variants -> primitives + behavior",
    ),
    (
        "crates/bench/src/bin/repro.rs",
        "constructs fixed benchmark workload instances (no dispatch)",
    ),
    (
        "crates/bench/benches/figures.rs",
        "constructs fixed benchmark workload instances (no dispatch)",
    ),
];

/// The production slice of a source file: everything before the first
/// `#[cfg(test)]` marker (unit-test modules are free to pin variant
/// behaviour), with `//` line comments stripped so doc references like
/// `[`FaultModel::StuckOpen`]` don't count as code.
fn production_code(source: &str) -> String {
    let cut = source.find("#[cfg(test)]").unwrap_or(source.len());
    source[..cut]
        .lines()
        .map(|line| line.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Does the text name a `FaultModel` variant (`FaultModel::` followed
/// by an uppercase letter — associated functions and constants are all
/// lowercase or SCREAMING_CASE consts, which the second-letter check
/// distinguishes)?
fn variant_mentions(text: &str) -> Vec<String> {
    let mut found = Vec::new();
    for (pos, _) in text.match_indices("FaultModel::") {
        let rest = &text[pos + "FaultModel::".len()..];
        let mut chars = rest.chars();
        let (Some(first), second) = (chars.next(), chars.next()) else {
            continue;
        };
        // Variants are CamelCase: `FAULT_CLASS_LABELS`-style consts
        // (all caps + underscore) are not variant knowledge.
        if first.is_ascii_uppercase() && second.is_some_and(|c| c.is_ascii_lowercase()) {
            let token: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            found.push(format!("FaultModel::{token}"));
        }
    }
    found
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace's production sources (crate `src/` trees, bins and
/// benches — integration `tests/` directories are excluded by
/// construction: tests may pin variant behaviour freely).
fn production_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    rust_sources(&root.join("src"), &mut files);
    if let Ok(crates) = fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            rust_sources(&entry.path().join("src"), &mut files);
            rust_sources(&entry.path().join("benches"), &mut files);
        }
    }
    files.sort();
    files
}

/// No non-test production source outside the allowlist names a
/// `FaultModel` variant.
#[test]
fn fault_model_variants_confined_to_lowering_module() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = production_sources(root);
    assert!(
        files.len() > 40,
        "source walk looks broken: only {} files found",
        files.len()
    );
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .expect("workspace-relative")
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.iter().any(|(allowed, _)| rel == *allowed) {
            continue;
        }
        let source = fs::read_to_string(path).expect("readable source");
        for mention in variant_mentions(&production_code(&source)) {
            violations.push(format!("{rel}: {mention}"));
        }
    }
    assert!(
        violations.is_empty(),
        "FaultModel variant knowledge outside the lowering module — \
         route it through marchgen_faults::lowering instead:\n{}",
        violations.join("\n")
    );
}

/// The allowlist itself stays honest: every entry exists and actually
/// needs its exemption (an allowlisted file with no variant mentions
/// is stale and must be removed).
#[test]
fn allowlist_entries_exist_and_are_needed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (rel, reason) in ALLOWED {
        let path = root.join(rel);
        let source =
            fs::read_to_string(&path).unwrap_or_else(|_| panic!("allowlisted {rel} missing"));
        assert!(
            !variant_mentions(&production_code(&source)).is_empty(),
            "{rel} ({reason}) no longer names any FaultModel variant — drop it from ALLOWED"
        );
    }
}

/// The key tentpole claim, pinned explicitly: the scalar, bit-parallel
/// and wide-lane interpreters are fully behaviour-driven.
#[test]
fn interpreters_are_variant_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in [
        "crates/sim/src/engine.rs",
        "crates/sim/src/memory.rs",
        "crates/sim/src/bitsim.rs",
        "crates/sim/src/widesim.rs",
        "crates/sim/src/linked.rs",
        "crates/sim/src/diagnosis.rs",
    ] {
        let source = fs::read_to_string(root.join(rel)).expect("sim source");
        let mentions = variant_mentions(&production_code(&source));
        assert!(
            mentions.is_empty(),
            "{rel} must interpret FaultBehavior, not FaultModel variants: {mentions:?}"
        );
    }
}

/// The lint's own matcher: catches variants, ignores comments,
/// associated functions, constants and test modules.
#[test]
fn matcher_distinguishes_variants_from_api() {
    assert_eq!(
        variant_mentions("match m { FaultModel::StuckAt(v) => v }"),
        vec!["FaultModel::StuckAt"]
    );
    assert!(variant_mentions("FaultModel::all_extended()").is_empty());
    assert!(variant_mentions("FaultModel::FAULT_CLASS_LABELS").is_empty());
    assert!(variant_mentions(&production_code("// FaultModel::StuckOpen docs")).is_empty());
    assert!(variant_mentions(&production_code(
        "fn ok() {}\n#[cfg(test)]\nmod tests { use FaultModel::StuckOpen; }"
    ))
    .is_empty());
}
