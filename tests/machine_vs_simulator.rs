//! Cross-validation of the two independent fault-behaviour
//! implementations:
//!
//! * the **two-cell Mealy machines** of `faults::catalog` (paper f.2.2 —
//!   used for BFE extraction and TP derivation), and
//! * the **behavioural n-cell simulator** of `sim::memory` (paper §6 —
//!   used for verification).
//!
//! On a 2-cell memory, driving both with the same operation sequence must
//! produce identical outputs and identical final states, for every
//! machine-representable fault model, every initial state and every
//! aggressor order. Property-tested with random operation sequences
//! (deterministic `marchgen-testkit` harness).

use marchgen::faults::catalog;
use marchgen::model::{Bit, MemOp, PairState, TwoCellMachine, ALL_OPS};
use marchgen::prelude::*;
use marchgen::sim::memory::{FaultyMemory, MemoryBehavior};
use marchgen::sim::SiteCells;
use marchgen_testkit::{run_cases, Rng};

fn random_op(rng: &mut Rng) -> MemOp {
    *rng.pick(&ALL_OPS)
}

/// The site corresponding to a catalog machine, on a 2-cell memory.
/// Machines come in (cell I / aggressor I) then (cell J / aggressor J)
/// order (see `catalog::machines`).
fn site_for(model: FaultModel, index: usize) -> SiteCells {
    if model.is_pair_fault() {
        if index == 0 {
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            }
        } else {
            SiteCells::Pair {
                aggressor: 1,
                victim: 0,
            }
        }
    } else {
        SiteCells::Single(index)
    }
}

fn drive_machine(
    machine: &TwoCellMachine,
    start: PairState,
    ops: &[MemOp],
) -> (PairState, Vec<Option<Bit>>) {
    machine.run(start, ops)
}

/// The machines are defined over the full state set `Q`, but a faulty
/// memory can only *be* in storage-consistent states (a stuck-at-0 cell
/// is physically 0 at power-up; an active CFst condition forces its
/// victim immediately). Align both sides on the simulator's
/// post-power-up state, which is where all reachable behaviour lives.
fn aligned_start(model: FaultModel, site: SiteCells, requested: PairState) -> PairState {
    let cells = vec![
        requested.i.bit().expect("known start"),
        requested.j.bit().expect("known start"),
    ];
    let mem = FaultyMemory::new(cells, model, site, Bit::Zero);
    PairState::new_known(mem.peek(0), mem.peek(1))
}

fn drive_simulator(
    model: FaultModel,
    site: SiteCells,
    start: PairState,
    ops: &[MemOp],
) -> (PairState, Vec<Option<Bit>>) {
    let cells = vec![
        start.i.bit().expect("known start"),
        start.j.bit().expect("known start"),
    ];
    let mut mem = FaultyMemory::new(cells, model, site, Bit::Zero);
    let mut outs = Vec::with_capacity(ops.len());
    for &op in ops {
        match op {
            MemOp::Read(c) => outs.push(Some(mem.read(c.index()))),
            MemOp::Write(c, d) => {
                mem.write(c.index(), d);
                outs.push(None);
            }
            MemOp::Delay => {
                mem.delay();
                outs.push(None);
            }
        }
    }
    let end = PairState::new_known(mem.peek(0), mem.peek(1));
    (end, outs)
}

fn machine_models() -> Vec<FaultModel> {
    FaultModel::all_classical()
        .into_iter()
        .filter(|m| !catalog::machines(*m).is_empty())
        .collect()
}

#[test]
fn machines_and_simulator_agree() {
    let models = machine_models();
    run_cases("machines_and_simulator_agree", 64, |rng| {
        let model = *rng.pick(&models);
        let machines = catalog::machines(model);
        let variant = rng.range(0, machines.len());
        let (label, machine) = &machines[variant];
        let site = site_for(model, variant);
        let start = aligned_start(model, site, PairState::from_index(rng.range(0, 4)));
        let ops = rng.vec(1, 24, random_op);

        let (m_end, m_outs) = drive_machine(machine, start, &ops);
        let (s_end, s_outs) = drive_simulator(model, site, start, &ops);

        assert_eq!(
            m_outs, s_outs,
            "{label} from {start}: outputs diverge on {ops:?}"
        );
        assert_eq!(
            m_end, s_end,
            "{label} from {start}: final states diverge on {ops:?}"
        );
    });
}

/// The deterministic exhaustive version for short sequences: every model,
/// every variant, every start state, every op sequence of length ≤ 3.
#[test]
fn exhaustive_short_sequences_agree() {
    let all_ops: Vec<MemOp> = marchgen::model::ALL_OPS.to_vec();
    for model in machine_models() {
        for (index, (label, machine)) in catalog::machines(model).iter().enumerate() {
            let site = site_for(model, index);
            for requested in PairState::all_known() {
                let start = aligned_start(model, site, requested);
                for a in &all_ops {
                    for b in &all_ops {
                        let ops = [*a, *b];
                        let (m_end, m_outs) = drive_machine(machine, start, &ops);
                        let (s_end, s_outs) = drive_simulator(model, site, start, &ops);
                        assert_eq!(
                            m_outs, s_outs,
                            "{label} from {start}: outputs diverge on {a}, {b}"
                        );
                        assert_eq!(
                            m_end, s_end,
                            "{label} from {start}: states diverge on {a}, {b}"
                        );
                    }
                }
            }
        }
    }
}
