//! End-to-end smoke test of the `marchgend` daemon: spawns the real
//! binary on a loopback port and drives it with a std-only `TcpStream`
//! client through the acceptance sequence — generate → permuted-request
//! cache hit (with the ≥10× latency drop) → oversized body → stats →
//! graceful shutdown — and checks daemon outcomes are byte-identical to
//! CLI `--json` output modulo the diagnostics block.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FAULTS: &str = r#"["SAF", "TF", "ADF", "CFin", "CFid"]"#;
const FAULTS_PERMUTED: &str = r#"["CFid", "ADF", "CFin", "TF", "SAF"]"#;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        Daemon::spawn_with(extra_args, Stdio::inherit())
    }

    /// Like [`Daemon::spawn`], but with the given stderr disposition —
    /// pass `Stdio::piped()` to capture daemon warnings for assertion.
    fn spawn_with(extra_args: &[&str], stderr: Stdio) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_marchgend"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .expect("spawn marchgend");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("read listen line");
        let addr = first_line
            .trim()
            .strip_prefix("marchgend listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {first_line:?}"))
            .to_owned();
        Daemon { child, addr }
    }

    /// One HTTP exchange on a fresh connection; returns (status, body).
    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut wire = String::new();
        stream.read_to_string(&mut wire).expect("read response");
        let status: u16 = wire
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response {wire:?}"));
        let body = wire
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    /// Opens one keep-alive connection for several exchanges. Latency
    /// comparisons ride this: a fresh connection pays up to one
    /// accept-loop poll interval of jitter before a worker picks it
    /// up — comparable to the whole handling time of a cache hit in
    /// release builds — while on an established connection the serving
    /// worker is already parked on the socket and wakes on arrival.
    fn keepalive(&self) -> KeepAlive {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        KeepAlive {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            stream,
        }
    }

    /// Sends raw bytes verbatim on a fresh connection — for protocol
    /// shapes `request` cannot produce (duplicate framing headers).
    fn raw(&self, wire_request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream
            .write_all(wire_request.as_bytes())
            .expect("send raw request");
        let mut wire = String::new();
        stream.read_to_string(&mut wire).expect("read response");
        let status: u16 = wire
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response {wire:?}"));
        let body = wire
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn wait_for_exit(mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("poll daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit within the deadline after shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A panicking test must not leak its daemon: the orphan would
        // keep the harness's inherited stderr pipe open forever,
        // wedging `cargo test | ...` pipelines long after the test
        // binary exited. Killing an already-exited child is a no-op.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One persistent daemon connection (see [`Daemon::keepalive`]).
struct KeepAlive {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl KeepAlive {
    /// One HTTP exchange on the persistent connection; returns
    /// `(status, body)`. Responses are framed by `Content-Length`, so
    /// the connection stays usable for the next exchange.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: marchgend\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("unparseable status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

/// Pulls an integer out of rendered JSON like `"misses":3` — enough for
/// asserting flat counter objects without a decoder dependency.
fn counter(body: &str, name: &str) -> i64 {
    let pattern = format!("\"{name}\":");
    let start = body
        .find(&pattern)
        .unwrap_or_else(|| panic!("{name:?} not in {body}"))
        + pattern.len();
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name:?} is not an integer in {body}"))
}

/// Strips the volatile diagnostics block out of a rendered outcome so
/// two outcomes can be compared byte-for-byte. Diagnostics is the only
/// field allowed to differ between a computed and a replayed outcome
/// (timings + the `cache_hit` stamp), and it renders as the trailing
/// `"diagnostics":{...}` member of the schema-v1 document.
fn without_diagnostics(outcome_json: &str) -> String {
    let start = outcome_json
        .find("\"diagnostics\"")
        .unwrap_or_else(|| panic!("no diagnostics in {outcome_json}"));
    outcome_json[..start].to_owned()
}

#[test]
fn daemon_smoke_generate_cache_stats_shutdown() {
    let cache_dir =
        std::env::temp_dir().join(format!("marchgend-smoke-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let daemon = Daemon::spawn(&[
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--max-body-bytes",
        "4096",
        "--workers",
        "2",
    ]);

    // ---- health ---------------------------------------------------------
    let (status, body) = daemon.request("GET", "/v1/health", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"schema\":1"), "{body}");

    // ---- first generate: a full computation -----------------------------
    // Cold and warm ride one keep-alive connection so the latency
    // comparison measures the daemon's handling time, not accept-loop
    // poll jitter (which is of the same order as a whole cache hit in
    // release builds).
    let mut latency_conn = daemon.keepalive();
    let request_doc = format!("{{\"faults\": {FAULTS}}}");
    let cold_started = Instant::now();
    let (status, cold_body) = latency_conn.request("POST", "/v1/generate", &request_doc);
    let cold_latency = cold_started.elapsed();
    assert_eq!(status, 200, "{cold_body}");
    assert!(cold_body.contains("\"complexity\":10"), "{cold_body}");
    assert!(cold_body.contains("\"verified\":true"), "{cold_body}");
    assert!(cold_body.contains("\"cache_hit\":false"), "{cold_body}");

    // ---- permuted repeat: served from cache, ≥10× faster ----------------
    // Warm latency is the minimum over a few repeats — the standard
    // noise-free estimator; the cold computation keeps its single
    // (pessimistic for the assertion) measurement.
    let permuted_doc = format!("{{\"faults\": {FAULTS_PERMUTED}}}");
    let mut warm_latency = Duration::MAX;
    let mut warm_body = String::new();
    for _ in 0..5 {
        let warm_started = Instant::now();
        let (status, body) = latency_conn.request("POST", "/v1/generate", &permuted_doc);
        warm_latency = warm_latency.min(warm_started.elapsed());
        assert_eq!(status, 200, "{body}");
        warm_body = body;
    }
    drop(latency_conn);
    assert!(warm_body.contains("\"cache_hit\":true"), "{warm_body}");
    assert_eq!(
        without_diagnostics(&cold_body),
        without_diagnostics(&warm_body),
        "replayed outcome must be byte-identical modulo diagnostics"
    );
    assert!(
        warm_latency * 10 <= cold_latency,
        "cache hit should be ≥10× faster: cold {cold_latency:?}, warm (min of 5) {warm_latency:?}"
    );

    // ---- daemon output ≡ CLI --json output (modulo diagnostics) ---------
    let cli = Command::new(env!("CARGO_BIN_EXE_marchgen"))
        .args(["generate", "SAF, TF, ADF, CFin, CFid", "--json"])
        .output()
        .expect("run marchgen CLI");
    assert!(cli.status.success());
    // The CLI pretty-prints; normalize both documents by stripping all
    // inter-token whitespace outside strings (schema-v1 strings in this
    // workload never contain spaces that matter to the comparison —
    // March notation uses NBSP-free separators — so plain whitespace
    // stripping is a faithful normalizer here).
    let normalize = |text: &str| -> String {
        without_diagnostics(text)
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect()
    };
    let cli_json = String::from_utf8(cli.stdout).unwrap();
    assert_eq!(
        normalize(&cli_json),
        normalize(&cold_body),
        "daemon and CLI must serve identical outcomes for the same request"
    );

    // ---- oversized body → 413, never dispatched -------------------------
    let oversized = format!("{{\"faults\": [{}]}}", "\"SAF\",".repeat(1000) + "\"SAF\"");
    assert!(oversized.len() > 4096);
    let (status, body) = daemon.request("POST", "/v1/generate", &oversized);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("body_too_large"), "{body}");

    // ---- batch: one hit, one fresh, in input order ----------------------
    let batch_doc = format!("[{{\"faults\": {FAULTS}}}, {{\"faults\": [\"SAF\"]}}]");
    let (status, batch_body) = daemon.request("POST", "/v1/batch", &batch_doc);
    assert_eq!(status, 200, "{batch_body}");
    assert!(batch_body.starts_with("[{\"outcome\""), "{batch_body}");
    assert_eq!(batch_body.matches("\"outcome\"").count(), 2, "{batch_body}");

    // ---- solver pass-through: the wire format carries the request's
    // SolverChoice end-to-end and the outcome reports the backend ------
    let (status, body) = daemon.request(
        "POST",
        "/v1/generate",
        r#"{"faults": ["SAF"], "solver": "local-search"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"solver\":\"local-search\""), "{body}");
    assert!(body.contains("\"verified\":true"), "{body}");
    let (status, body) = daemon.request(
        "POST",
        "/v1/generate",
        r#"{"faults": ["SAF"], "solver": "no-such-backend"}"#,
    );
    assert_eq!(status, 422, "unknown solver must fail generation: {body}");

    // ---- request smuggling shapes are rejected with structured 400s -----
    let (status, body) = daemon.raw(
        "POST /v1/generate HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\
         content-length: 16\r\ncontent-length: 3\r\n\r\n{\"faults\":[\"SAF\"]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("duplicate_content_length"), "{body}");
    let (status, body) = daemon.raw(
        "POST /v1/generate HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\
         content-length: 16\r\ntransfer-encoding: chunked\r\n\r\n{\"faults\":[\"SAF\"]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("conflicting_framing"), "{body}");

    // ---- malformed and invalid documents --------------------------------
    let (status, body) = daemon.request("POST", "/v1/generate", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = daemon.request("POST", "/v1/generate", "{\"faults\": [\"NOPE\"]}");
    assert_eq!(status, 422, "{body}");
    let (status, _) = daemon.request("GET", "/v1/missing", "");
    assert_eq!(status, 404);
    let (status, _) = daemon.request("GET", "/v1/generate", "");
    assert_eq!(status, 405);

    // ---- stats reflect all of the above ---------------------------------
    let (status, stats) = daemon.request("GET", "/v1/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert!(counter(&stats, "hits") >= 2, "{stats}"); // permuted repeat + batch entry
                                                      // 5-model list + SAF-via-local-search + batch's plain SAF.
    assert_eq!(counter(&stats, "inserts"), 3, "{stats}");
    assert!(counter(&stats, "misses") >= 2, "{stats}");
    assert!(counter(&stats, "computed") >= 2, "{stats}");
    assert!(counter(&stats, "generate") >= 4, "{stats}");
    assert_eq!(counter(&stats, "batch"), 1, "{stats}");
    // No colliding entries were encountered anywhere in the sequence.
    assert_eq!(counter(&stats, "key_mismatches"), 0, "{stats}");
    // The stats request itself is the one request in flight.
    assert_eq!(counter(&stats, "in_flight"), 1, "{stats}");
    assert!(counter(&stats, "requests") >= 8, "{stats}");
    // The oversized body and the two smuggling shapes were turned away
    // at the protocol layer.
    assert_eq!(counter(&stats, "protocol_errors"), 3, "{stats}");

    // ---- graceful shutdown ----------------------------------------------
    let (status, body) = daemon.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"stopping\":true"), "{body}");
    daemon.wait_for_exit();

    // The persistent store survived: one file per cached problem.
    let entries = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .count();
    assert_eq!(entries, 3, "one JSON file per cached outcome");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Splits one raw HTTP response into `(status, headers, body)` with the
/// chunked transfer coding decoded — the reader side of the daemon's
/// `/v1/stream` wire format.
fn dechunk(wire: &str) -> (u16, String, String) {
    let status: u16 = wire
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response {wire:?}"));
    let (head, mut rest) = wire
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {wire:?}"));
    if !head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        return (status, head.to_owned(), rest.to_owned());
    }
    let mut body = String::new();
    loop {
        let (size_line, after) = rest
            .split_once("\r\n")
            .unwrap_or_else(|| panic!("truncated chunk size in {rest:?}"));
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
        if size == 0 {
            break;
        }
        body.push_str(&after[..size]);
        rest = after[size..]
            .strip_prefix("\r\n")
            .unwrap_or_else(|| panic!("chunk of {size} not CRLF-terminated"));
    }
    (status, head.to_owned(), body)
}

/// The `/v1/stream` endpoint emits chunked JSON-lines progress frames
/// while a multi-item batch runs, and the per-peer token bucket answers
/// over-budget peers `429` + `Retry-After`; `/v1/stats` counts both.
#[test]
fn daemon_streams_progress_and_rate_limits_peers() {
    let daemon = Daemon::spawn(&["--workers", "2", "--rate-limit", "4", "--rate-burst", "40"]);

    // ---- the stream: 3 items, 2 succeed, 1 fails ------------------------
    // Distinct fault lists (no in-batch dedupe), the empty list failing
    // generation — so the frame stream must show per-item successes AND
    // a failure, ending in the terminal totals.
    let body = r#"[{"faults": ["SAF"]}, {"faults": ["SAF", "TF"]}, {"faults": []}]"#;
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "POST /v1/stream HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send stream request");
    let mut wire = String::new();
    stream.read_to_string(&mut wire).expect("read stream");
    let (status, head, frames) = dechunk(&wire);
    assert_eq!(status, 200, "{wire}");
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/x-ndjson"),
        "{head}"
    );
    // Every response carries a request id (generated here — the client
    // sent none), and the id echoed on the head is the one the batch
    // announcement frame attributes the stream to.
    assert!(
        head.to_ascii_lowercase().contains("x-request-id: req-"),
        "{head}"
    );

    // A client-supplied id is echoed back verbatim instead.
    let mut tagged = TcpStream::connect(&daemon.addr).expect("connect");
    tagged
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        tagged,
        "GET /v1/health HTTP/1.1\r\nhost: x\r\nx-request-id: chaos-cafe-42\r\nconnection: close\r\n\r\n"
    )
    .expect("send tagged request");
    let mut tagged_wire = String::new();
    tagged
        .read_to_string(&mut tagged_wire)
        .expect("read tagged response");
    assert!(
        tagged_wire
            .to_ascii_lowercase()
            .contains("x-request-id: chaos-cafe-42"),
        "{tagged_wire}"
    );
    let lines: Vec<&str> = frames.lines().collect();
    assert_eq!(
        lines.len(),
        8,
        "batch + started x3 + item x3 + completed: {frames}"
    );
    // Frame 0 announces the resumption token; every frame carries a
    // gapless monotone sequence number.
    assert!(
        lines[0].starts_with("{\"event\":\"batch\",\"batch_id\":\"b-"),
        "{frames}"
    );
    assert!(lines[0].contains("\"request_id\":\""), "{frames}");
    for (expected_seq, line) in lines.iter().enumerate() {
        assert!(
            line.ends_with(&format!(",\"seq\":{expected_seq}}}")),
            "{line}"
        );
    }
    // ≥ 3 distinct frame kinds besides the announcement: start, item,
    // terminal.
    assert!(
        lines
            .iter()
            .filter(|l| l.starts_with("{\"event\":\"started\""))
            .count()
            == 3,
        "{frames}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"item\"")
            && l.contains("\"ok\":true")
            && l.contains("\"complexity\":")
            && l.contains("\"diagnostics\"")),
        "{frames}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"item\"") && l.contains("\"ok\":false")),
        "{frames}"
    );
    assert!(
        lines
            .last()
            .unwrap()
            .starts_with("{\"event\":\"completed\",\"total\":3,\"succeeded\":2,\"failed\":1"),
        "terminal frame is last: {frames}"
    );

    // ---- resumption: the replay is byte-identical -----------------------
    // The batch is complete but stays in the replay ring; re-attaching
    // from seq 0 must resend every frame exactly as first delivered.
    let batch_id = lines[0]
        .split_once("\"batch_id\":\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map(|(id, _)| id.to_owned())
        .expect("batch frame carries batch_id");
    let mut resume = TcpStream::connect(&daemon.addr).expect("connect");
    resume
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        resume,
        "GET /v1/stream?resume={batch_id}&from=0 HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\n\r\n"
    )
    .expect("send resume request");
    let mut resumed_wire = String::new();
    resume
        .read_to_string(&mut resumed_wire)
        .expect("read resumed stream");
    let (status, _, replayed) = dechunk(&resumed_wire);
    assert_eq!(status, 200, "{resumed_wire}");
    assert_eq!(replayed, frames, "resumed replay must be byte-identical");

    // Resuming mid-stream replays only the tail, and the error paths
    // are structured: unknown tokens 404, malformed cursors 422.
    let mut tail = TcpStream::connect(&daemon.addr).expect("connect");
    tail.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        tail,
        "GET /v1/stream?resume={batch_id}&from=7 HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\n\r\n"
    )
    .expect("send tail resume");
    let mut tail_wire = String::new();
    tail.read_to_string(&mut tail_wire).expect("read tail");
    let (status, _, tail_frames) = dechunk(&tail_wire);
    assert_eq!(status, 200, "{tail_wire}");
    assert_eq!(
        tail_frames.lines().collect::<Vec<_>>(),
        vec![*lines.last().unwrap()],
        "from=7 replays exactly the terminal frame"
    );
    let (status, body) = daemon.request("GET", "/v1/stream?resume=b-bogus&from=0", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"code\":\"resume_unknown\""), "{body}");
    let (status, body) = daemon.request(
        "GET",
        &format!("/v1/stream?resume={batch_id}&from=banana"),
        "",
    );
    assert_eq!(status, 422, "{body}");

    // ---- exhaust the per-peer bucket ------------------------------------
    // Burst 40 minus what the test already spent; hammering quick
    // health probes must hit a 429 with a Retry-After hint well within
    // the attempt budget.
    let mut rejected = None;
    for _ in 0..80 {
        let mut probe = TcpStream::connect(&daemon.addr).expect("connect");
        probe
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            probe,
            "GET /v1/health HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"
        )
        .expect("send probe");
        let mut wire = String::new();
        probe.read_to_string(&mut wire).expect("read probe");
        if wire.starts_with("HTTP/1.1 429") {
            rejected = Some(wire);
            break;
        }
        assert!(wire.starts_with("HTTP/1.1 200"), "{wire}");
    }
    let rejected = rejected.expect("bucket of 40 must exhaust within 80 rapid probes");
    assert!(rejected.contains("\"code\":\"rate_limited\""), "{rejected}");
    let retry_after: u64 = rejected
        .to_ascii_lowercase()
        .split_once("retry-after: ")
        .map(|(_, rest)| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("429 must carry Retry-After: {rejected}"));
    assert!(retry_after >= 1, "{rejected}");

    // ---- stats count both, once the bucket refills ----------------------
    let stats = {
        let mut attempt = 0;
        loop {
            std::thread::sleep(Duration::from_millis(600));
            let (status, body) = daemon.request("GET", "/v1/stats", "");
            if status == 200 {
                break body;
            }
            attempt += 1;
            assert!(attempt < 60, "stats stayed rate-limited: {body}");
        }
    };
    // Server-side stream connections: the original batch plus the two
    // successful resume re-attachments (this finds the `server` block's
    // numeric `"streams"` counter, which renders before the stream
    // registry's `"streams"` object).
    assert_eq!(counter(&stats, "streams"), 3, "{stats}");
    // Endpoint hits include the two rejected resume attempts (404/422).
    assert_eq!(counter(&stats, "stream"), 5, "{stats}");
    // The stream-registry gauges: one retained batch, two resumes.
    assert_eq!(counter(&stats, "retained"), 1, "{stats}");
    assert_eq!(counter(&stats, "resumed"), 2, "{stats}");
    assert!(counter(&stats, "rejected_rate_limited") >= 1, "{stats}");

    // ---- graceful shutdown (may need the bucket to refill) --------------
    let mut attempt = 0;
    loop {
        let (status, _) = daemon.request("POST", "/v1/shutdown", "");
        if status == 200 {
            break;
        }
        attempt += 1;
        assert!(attempt < 60, "shutdown stayed rate-limited");
        std::thread::sleep(Duration::from_millis(600));
    }
    daemon.wait_for_exit();
}

/// `POST /v1/rtl` serves the SystemVerilog BIST bundle for a march
/// given directly or generated from a fault list, caches rendered
/// bundles by the canonical (march ⊕ options) key, matches the CLI
/// byte-for-byte, and shows up in `/v1/stats`.
#[test]
fn daemon_serves_rtl_bundles() {
    use marchgen::json::Json;
    let daemon = Daemon::spawn(&["--workers", "2"]);
    let code_of = |body: &str| -> (String, Json) {
        let doc = Json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
        let code = doc
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no \"code\" in {body}"))
            .to_owned();
        (code, doc)
    };

    // ---- direct march path: render, then replay from the RTL cache ------
    let rtl_doc = r#"{"march": "March C-", "rtl": {"name": "march_c_minus", "addr_width": 4}}"#;
    let (status, body) = daemon.request("POST", "/v1/rtl", rtl_doc);
    assert_eq!(status, 200, "{body}");
    let (cold_code, doc) = code_of(&body);
    assert_eq!(doc.get("schema").and_then(Json::as_int), Some(1));
    assert_eq!(doc.get("lang").and_then(Json::as_str), Some("sv"));
    assert_eq!(doc.get("complexity").and_then(Json::as_int), Some(10));
    assert!(body.contains("\"cache_hit\":false"), "{body}");
    assert!(
        cold_code.contains("module march_c_minus_patgen"),
        "{cold_code}"
    );
    assert!(
        cold_code.contains("module march_c_minus_bist"),
        "{cold_code}"
    );
    assert!(cold_code.contains("module march_c_minus_tb"), "{cold_code}");

    let (status, body) = daemon.request("POST", "/v1/rtl", rtl_doc);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache_hit\":true"), "{body}");
    let (warm_code, _) = code_of(&body);
    assert_eq!(cold_code, warm_code, "replayed bundle must be identical");

    // ---- daemon bytes ≡ CLI bytes for the same march and options --------
    let cli = Command::new(env!("CARGO_BIN_EXE_marchgen"))
        .args([
            "codegen",
            "March C-",
            "--lang",
            "sv",
            "--name",
            "march_c_minus",
            "--addr-width",
            "4",
        ])
        .output()
        .expect("run marchgen CLI");
    assert!(cli.status.success());
    assert_eq!(
        String::from_utf8(cli.stdout).unwrap(),
        cold_code,
        "daemon and CLI must emit identical SystemVerilog"
    );

    // ---- generated path: fault list → verified test → RTL ---------------
    let gen_doc = format!("{{\"faults\": {FAULTS}, \"rtl\": {{\"testbench\": false}}}}");
    let (status, body) = daemon.request("POST", "/v1/rtl", &gen_doc);
    assert_eq!(status, 200, "{body}");
    let (gen_code, doc) = code_of(&body);
    assert_eq!(doc.get("complexity").and_then(Json::as_int), Some(10));
    assert!(body.contains("\"cache_hit\":false"), "{body}");
    assert!(gen_code.contains("module march_test_patgen"), "{gen_code}");
    assert!(!gen_code.contains("module march_test_tb"), "{gen_code}");
    let (status, body) = daemon.request("POST", "/v1/rtl", &gen_doc);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache_hit\":true"), "{body}");

    // ---- failure modes map onto the shared error taxonomy ---------------
    let (status, body) = daemon.request("POST", "/v1/rtl", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid_json"), "{body}");
    let (status, body) = daemon.request("POST", "/v1/rtl", r#"{"march": 7}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("invalid_request"), "{body}");
    let (status, body) = daemon.request("POST", "/v1/rtl", r#"{"march": "{ u(r0) }"}"#);
    assert_eq!(status, 422, "uninitialized read must be rejected: {body}");
    let (status, body) = daemon.request(
        "POST",
        "/v1/rtl",
        r#"{"march": "MATS", "rtl": {"addr_width": "ten"}}"#,
    );
    assert_eq!(status, 422, "{body}");
    let (status, body) = daemon.request("GET", "/v1/rtl", "");
    assert_eq!(status, 405, "{body}");

    // ---- stats: endpoint counter + render-cache hit/miss ----------------
    let (status, stats) = daemon.request("GET", "/v1/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert_eq!(counter(&stats, "rtl"), 8, "{stats}");
    let rtl_cache = stats
        .split_once("\"rtl_cache\":")
        .map(|(_, rest)| rest)
        .expect("rtl_cache block in stats");
    assert_eq!(counter(rtl_cache, "hits"), 2, "{stats}");
    assert_eq!(counter(rtl_cache, "misses"), 2, "{stats}");
    assert_eq!(counter(rtl_cache, "resident"), 2, "{stats}");

    let (status, _) = daemon.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    daemon.wait_for_exit();
}

/// A fresh daemon pointed at a pre-warmed `--cache-dir` serves its very
/// first request from disk — memoization across processes.
#[test]
fn daemon_serves_from_a_prewarmed_disk_cache() {
    let cache_dir =
        std::env::temp_dir().join(format!("marchgend-smoke-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let dir_arg = cache_dir.to_str().unwrap().to_owned();

    let first = Daemon::spawn(&["--cache-dir", &dir_arg]);
    let (status, _) = first.request("POST", "/v1/generate", r#"{"faults": ["SAF", "TF"]}"#);
    assert_eq!(status, 200);
    let (status, _) = first.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    first.wait_for_exit();

    let second = Daemon::spawn(&["--cache-dir", &dir_arg]);
    let (status, body) = second.request("POST", "/v1/generate", r#"{"faults": ["TF", "SAF"]}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache_hit\":true"), "{body}");
    let (_, stats) = second.request("GET", "/v1/stats", "");
    assert_eq!(counter(&stats, "disk_hits"), 1, "{stats}");
    let (status, _) = second.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    second.wait_for_exit();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Extracts the integer sample value of one exact series (metric name
/// plus rendered label block) from a Prometheus text exposition.
fn metric_value(exposition: &str, series: &str) -> i64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(series)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} not found in:\n{exposition}"))
}

/// `/v1/stats` and `GET /metrics` are two views over the same registry:
/// after a cold/warm request pair they must agree on cache hit counts.
/// The stats document also carries `uptime_seconds` and a `stats_seq`
/// that increases monotonically across snapshots.
#[test]
fn daemon_stats_and_metrics_agree_on_cache_hits() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    let (status, _) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF", "TF"]}"#);
    assert_eq!(status, 200);
    let (status, warm) = daemon.request("POST", "/v1/generate", r#"{"faults": ["TF", "SAF"]}"#);
    assert_eq!(status, 200);
    assert!(warm.contains("\"cache_hit\":true"), "{warm}");

    let (status, stats) = daemon.request("GET", "/v1/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert!(stats.contains("\"uptime_seconds\":"), "{stats}");
    let first_seq = counter(&stats, "stats_seq");
    assert!(first_seq >= 1, "{stats}");
    let stats_hits = counter(&stats, "hits");
    assert!(stats_hits >= 1, "{stats}");

    let (status, metrics) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{metrics}");
    let metric_hits: i64 = ["memory", "disk"]
        .iter()
        .map(|tier| {
            metric_value(
                &metrics,
                &format!("marchgend_cache_hits_total{{tier=\"{tier}\"}}"),
            )
        })
        .sum();
    assert_eq!(
        metric_hits, stats_hits,
        "stats and metrics disagree on cache hits:\n{stats}\n---\n{metrics}"
    );

    let (status, stats) = daemon.request("GET", "/v1/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert!(
        counter(&stats, "stats_seq") > first_seq,
        "stats_seq must increase monotonically: {stats}"
    );

    let (status, _) = daemon.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    daemon.wait_for_exit();
}

/// The extended workload space passes through the wire end-to-end:
/// dynamic and linked fault classes generate over HTTP, echo their
/// grammar tokens in the response document, and tick the per-class
/// counters — whose fixed vocabulary exposes zero-valued series for
/// classes never requested.
#[test]
fn daemon_serves_extended_fault_classes_and_counts_them() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    let (status, body) = daemon.request(
        "POST",
        "/v1/generate",
        r#"{"faults": ["SAF", "dRDF<0>", "LCF<1>"]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verified\":true"), "{body}");
    assert!(body.contains("dRDF<0>"), "{body}");
    assert!(body.contains("LCF<1>"), "{body}");

    let (status, metrics) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    for class in ["SAF", "dRDF", "LCF"] {
        assert_eq!(
            metric_value(
                &metrics,
                &format!("marchgend_fault_class_requests_total{{fault_class=\"{class}\"}}"),
            ),
            1,
            "request counter for {class}:\n{metrics}"
        );
        assert_eq!(
            metric_value(
                &metrics,
                &format!(
                    "marchgend_fault_class_verify_total\
                     {{fault_class=\"{class}\",outcome=\"verified\"}}"
                ),
            ),
            1,
            "verify counter for {class}:\n{metrics}"
        );
    }
    // Fixed vocabulary: a class never requested still has its series.
    assert_eq!(
        metric_value(
            &metrics,
            "marchgend_fault_class_requests_total{fault_class=\"dIRF\"}",
        ),
        0,
        "{metrics}"
    );

    let (status, _) = daemon.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    daemon.wait_for_exit();
}

/// `--slow-request-ms` warns on stderr when serving a request (handler
/// plus response write) takes at least the threshold; a 1ms threshold
/// makes a cold five-model generate slow.
#[test]
fn daemon_warns_on_slow_requests() {
    let mut daemon = Daemon::spawn_with(
        &["--workers", "2", "--slow-request-ms", "1"],
        Stdio::piped(),
    );
    let stderr = daemon.child.stderr.take().expect("piped stderr");
    // Drain stderr concurrently so the daemon can never block on a full
    // pipe while we wait for it to exit.
    let reader = std::thread::spawn(move || {
        let mut text = String::new();
        BufReader::new(stderr)
            .read_to_string(&mut text)
            .expect("read stderr");
        text
    });

    let (status, body) = daemon.request(
        "POST",
        "/v1/generate",
        &format!(r#"{{"faults": {FAULTS}}}"#),
    );
    assert_eq!(status, 200, "{body}");
    let (status, _) = daemon.request("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    daemon.wait_for_exit();

    let stderr_text = reader.join().expect("stderr reader");
    assert!(
        stderr_text.contains("slow request:"),
        "expected a slow-request warning on stderr, got:\n{stderr_text}"
    );
    assert!(stderr_text.contains("POST /v1/generate"), "{stderr_text}");
    assert!(stderr_text.contains("(threshold 1ms)"), "{stderr_text}");
}
