//! Property-based integration tests: invariants that must hold across
//! randomly drawn fault lists, tours and March tests (deterministic
//! `marchgen-testkit` harness).

use marchgen::faults::requirements_for;
use marchgen::generator::schedule_tour;
use marchgen::prelude::*;
use marchgen::sim::engine::{run, FaultSite};
use marchgen::sim::memory::{GoodMemory, MemoryBehavior};
use marchgen_testkit::{run_cases, Rng};

/// A non-empty sublist of the polarity-complete fault families
/// (complement symmetry holds for these).
fn random_family_list(rng: &mut Rng) -> Vec<FaultModel> {
    let families = [
        "SAF", "TF", "ADF", "CFin", "CFid", "CFst", "RDF", "IRF", "dRDF", "dDRDF", "dIRF", "LCF",
    ];
    let mut models = Vec::new();
    for _ in 0..rng.range(1, 4) {
        let family = families[rng.range(0, families.len())];
        models.extend(parse_fault_list(family).expect("family parses"));
    }
    models.dedup();
    models
}

/// A structurally random (possibly inconsistent) March test.
fn random_march(rng: &mut Rng) -> MarchTest {
    let ops = [MarchOp::W0, MarchOp::W1, MarchOp::R0, MarchOp::R1];
    let dirs = [Direction::Up, Direction::Down, Direction::Any];
    let elements = rng.vec(1, 5, |rng| {
        let dir = *rng.pick(&dirs);
        let element_ops = rng.vec(1, 4, |rng| *rng.pick(&ops));
        MarchElement::new(dir, element_ops)
    });
    MarchTest::new(elements)
}

/// A random March test that passes the consistency check (rejection
/// sampled; the acceptance rate is high enough for the short shapes
/// drawn here).
fn random_consistent_march(rng: &mut Rng) -> MarchTest {
    loop {
        let test = random_march(rng);
        if test.check_consistency().is_ok() {
            return test;
        }
    }
}

/// Any tour over any choice of catalog TPs schedules into a
/// read-consistent March test.
#[test]
fn scheduled_tours_are_always_consistent() {
    run_cases("scheduled_tours_are_always_consistent", 48, |rng| {
        let models = random_family_list(rng);
        let seed = rng.range(0, 1000);
        let reqs = requirements_for(&models);
        let mut tps: Vec<TestPattern> = reqs
            .iter()
            .map(|r| r.alternatives[seed % r.cardinality().max(1)])
            .collect();
        // a deterministic pseudo-shuffle
        let n = tps.len();
        for k in 0..n {
            tps.swap(k, (k * 7 + seed) % n);
        }
        let test = schedule_tour(&tps).expect("catalog tours schedule");
        assert_eq!(test.check_consistency(), Ok(()));
    });
}

/// Display → parse is the identity on consistent generated tests.
#[test]
fn display_parse_roundtrip() {
    run_cases("display_parse_roundtrip", 48, |rng| {
        let models = random_family_list(rng);
        let reqs = requirements_for(&models);
        let tps: Vec<TestPattern> = reqs.iter().map(|r| r.alternatives[0]).collect();
        let test = schedule_tour(&tps).expect("schedules");
        let reparsed: MarchTest = test.to_string().parse().expect("parses back");
        assert_eq!(reparsed, test);
        let ascii: MarchTest = test.to_ascii().parse().expect("ascii parses back");
        assert_eq!(ascii, test);
    });
}

/// Display → parse is the identity on fault lists too: any sublist of
/// the extended taxonomy (classical + dynamic + linked), printed with
/// the canonical `", "` separator, re-parses to exactly itself.
#[test]
fn fault_list_display_parse_roundtrip() {
    let catalog = FaultModel::all_extended();
    // Exhaustive single-model pass first: every variant's printed form
    // is its own parse.
    for &model in &catalog {
        let parsed = parse_fault_list(&model.to_string()).expect("variant re-parses");
        assert_eq!(parsed, vec![model], "roundtrip of {model}");
    }
    run_cases("fault_list_display_parse_roundtrip", 96, |rng| {
        let models: Vec<FaultModel> = (0..rng.range(1, 6))
            .map(|_| catalog[rng.range(0, catalog.len())])
            .collect();
        let printed = models
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_fault_list(&printed).expect("list re-parses");
        assert_eq!(parsed, models, "roundtrip of {printed:?}");
    });
}

/// A consistent March test never mismatches on a fault-free memory,
/// whatever the power-up pattern and `⇕` resolutions.
#[test]
fn fault_free_memories_never_fail() {
    run_cases("fault_free_memories_never_fail", 48, |rng| {
        let test = random_consistent_march(rng);
        let fill = rng.flip();
        for resolution in marchgen::sim::engine::resolution_vectors(&test) {
            let mut mem = GoodMemory::filled(5, marchgen::model::Bit::from(fill));
            let records = run(&test, &mut mem, &resolution);
            assert!(records.iter().all(|r| !r.mismatch()), "{test}");
        }
    });
}

/// Coverage is invariant under data-polarity complement for
/// polarity-closed fault families.
#[test]
fn complement_preserves_family_coverage() {
    run_cases("complement_preserves_family_coverage", 48, |rng| {
        let test = random_consistent_march(rng);
        let lists = ["SAF", "TF", "CFin", "CFid"];
        let models = parse_fault_list(lists[rng.range(0, lists.len())]).expect("parses");
        let n = 3;
        let direct = covers_all(&test, &models, n);
        let complemented = covers_all(&test.complement(), &models, n);
        assert_eq!(direct, complemented, "{test}");
    });
}

/// Coverage is invariant under address-order mirroring for the
/// order-closed pair families (both orderings enumerated).
#[test]
fn mirror_preserves_pair_coverage() {
    run_cases("mirror_preserves_pair_coverage", 48, |rng| {
        let test = random_consistent_march(rng);
        let models = parse_fault_list("CFid").expect("parses");
        let n = 3;
        let direct = covers_all(&test, &models, n);
        let mirrored = covers_all(&test.mirrored(), &models, n);
        assert_eq!(direct, mirrored, "{test}");
    });
}

/// The per-cell sequence invariant: the flat operation count equals the
/// complexity plus delays.
#[test]
fn per_cell_sequence_length() {
    run_cases("per_cell_sequence_length", 48, |rng| {
        let test = random_march(rng);
        let seq = test.per_cell_sequence();
        assert_eq!(seq.len(), test.complexity() + test.delay_count());
    });
}

/// Simulating a fault site never mutates detection by enumeration order:
/// `detects` is deterministic.
#[test]
fn detection_is_deterministic() {
    run_cases("detection_is_deterministic", 48, |rng| {
        let test = random_consistent_march(rng);
        let aggr = rng.range(0, 3);
        let vict = (aggr + rng.range(1, 3)) % 3;
        let site = FaultSite {
            model: parse_fault_list("CFid<u,0>").unwrap()[0],
            cells: marchgen::sim::SiteCells::Pair {
                aggressor: aggr,
                victim: vict,
            },
        };
        let a = marchgen::sim::detects(&test, &site, 3);
        let b = marchgen::sim::detects(&test, &site, 3);
        assert_eq!(a, b);
    });
}

#[test]
fn good_memory_trait_object_is_usable() {
    let mut mem = GoodMemory::filled(4, marchgen::model::Bit::Zero);
    let as_dyn: &mut dyn MemoryBehavior = &mut mem;
    as_dyn.write(0, marchgen::model::Bit::One);
    assert_eq!(as_dyn.read(0), marchgen::model::Bit::One);
    assert_eq!(as_dyn.len(), 4);
}
