//! Property-based integration tests (proptest): invariants that must hold
//! across randomly drawn fault lists, tours and March tests.

use marchgen::faults::requirements_for;
use marchgen::generator::schedule_tour;
use marchgen::prelude::*;
use marchgen::sim::engine::{run, FaultSite};
use marchgen::sim::memory::{GoodMemory, MemoryBehavior};
use proptest::prelude::*;

/// A strategy over non-empty sublists of the polarity-complete fault
/// families (complement symmetry holds for these).
fn fault_family_list() -> impl Strategy<Value = Vec<FaultModel>> {
    let families = ["SAF", "TF", "ADF", "CFin", "CFid", "CFst", "RDF", "IRF"];
    proptest::collection::vec(0..families.len(), 1..4).prop_map(move |idx| {
        let mut models = Vec::new();
        for k in idx {
            models.extend(parse_fault_list(families[k]).expect("family parses"));
        }
        models.dedup();
        models
    })
}

/// A strategy over structurally random (possibly inconsistent) March
/// tests.
fn arbitrary_march() -> impl Strategy<Value = MarchTest> {
    let op = prop_oneof![
        Just(MarchOp::W0),
        Just(MarchOp::W1),
        Just(MarchOp::R0),
        Just(MarchOp::R1),
    ];
    let dir = prop_oneof![
        Just(Direction::Up),
        Just(Direction::Down),
        Just(Direction::Any),
    ];
    let element = (dir, proptest::collection::vec(op, 1..4))
        .prop_map(|(d, ops)| MarchElement::new(d, ops));
    proptest::collection::vec(element, 1..5).prop_map(MarchTest::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any tour over any choice of catalog TPs schedules into a
    /// read-consistent March test.
    #[test]
    fn scheduled_tours_are_always_consistent(
        models in fault_family_list(),
        seed in 0usize..1000,
    ) {
        let reqs = requirements_for(&models);
        let mut tps: Vec<TestPattern> =
            reqs.iter().map(|r| r.alternatives[seed % r.cardinality().max(1)]).collect();
        // a deterministic pseudo-shuffle
        let n = tps.len();
        for k in 0..n {
            tps.swap(k, (k * 7 + seed) % n);
        }
        let test = schedule_tour(&tps).expect("catalog tours schedule");
        prop_assert_eq!(test.check_consistency(), Ok(()));
    }

    /// Display → parse is the identity on consistent generated tests.
    #[test]
    fn display_parse_roundtrip(models in fault_family_list()) {
        let reqs = requirements_for(&models);
        let tps: Vec<TestPattern> = reqs.iter().map(|r| r.alternatives[0]).collect();
        let test = schedule_tour(&tps).expect("schedules");
        let reparsed: MarchTest = test.to_string().parse().expect("parses back");
        prop_assert_eq!(&reparsed, &test);
        let ascii: MarchTest = test.to_ascii().parse().expect("ascii parses back");
        prop_assert_eq!(&ascii, &test);
    }

    /// A consistent March test never mismatches on a fault-free memory,
    /// whatever the power-up pattern and `⇕` resolutions.
    #[test]
    fn fault_free_memories_never_fail(test in arbitrary_march(), fill in any::<bool>()) {
        prop_assume!(test.check_consistency().is_ok());
        for resolution in marchgen::sim::engine::resolution_vectors(&test) {
            let mut mem = GoodMemory::filled(5, marchgen::model::Bit::from(fill));
            let records = run(&test, &mut mem, &resolution);
            prop_assert!(records.iter().all(|r| !r.mismatch()));
        }
    }

    /// Coverage is invariant under data-polarity complement for
    /// polarity-closed fault families.
    #[test]
    fn complement_preserves_family_coverage(
        test in arbitrary_march(),
        family in 0usize..4,
    ) {
        prop_assume!(test.check_consistency().is_ok());
        let lists = ["SAF", "TF", "CFin", "CFid"];
        let models = parse_fault_list(lists[family]).expect("parses");
        let n = 3;
        let direct = covers_all(&test, &models, n);
        let complemented = covers_all(&test.complement(), &models, n);
        prop_assert_eq!(direct, complemented, "{}", test);
    }

    /// Coverage is invariant under address-order mirroring for the
    /// order-closed pair families (both orderings enumerated).
    #[test]
    fn mirror_preserves_pair_coverage(test in arbitrary_march()) {
        prop_assume!(test.check_consistency().is_ok());
        let models = parse_fault_list("CFid").expect("parses");
        let n = 3;
        let direct = covers_all(&test, &models, n);
        let mirrored = covers_all(&test.mirrored(), &models, n);
        prop_assert_eq!(direct, mirrored, "{}", test);
    }

    /// The per-cell sequence invariant: the flat operation count equals
    /// the complexity plus delays.
    #[test]
    fn per_cell_sequence_length(test in arbitrary_march()) {
        let seq = test.per_cell_sequence();
        prop_assert_eq!(seq.len(), test.complexity() + test.delay_count());
    }

    /// Simulating a fault site never mutates detection by enumeration
    /// order: `detects` is deterministic.
    #[test]
    fn detection_is_deterministic(test in arbitrary_march(), aggr in 0usize..3, vict in 0usize..3) {
        prop_assume!(test.check_consistency().is_ok());
        prop_assume!(aggr != vict);
        let site = FaultSite {
            model: parse_fault_list("CFid<u,0>").unwrap()[0],
            cells: marchgen::sim::SiteCells::Pair { aggressor: aggr, victim: vict },
        };
        let a = marchgen::sim::detects(&test, &site, 3);
        let b = marchgen::sim::detects(&test, &site, 3);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn good_memory_trait_object_is_usable() {
    let mut mem = GoodMemory::filled(4, marchgen::model::Bit::Zero);
    let as_dyn: &mut dyn MemoryBehavior = &mut mem;
    as_dyn.write(0, marchgen::model::Bit::One);
    assert_eq!(as_dyn.read(0), marchgen::model::Bit::One);
    assert_eq!(as_dyn.len(), 4);
}
