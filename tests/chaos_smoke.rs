//! Chaos smoke tests: drive the real `marchgend` binary with failpoints
//! armed and assert the hardening contract — **no wrong outcome ever,
//! structured errors always, recovery once the fault clears**.
//!
//! Compiled (and meaningful) only with the `failpoints` cargo feature:
//!
//! ```text
//! cargo test --features failpoints --test chaos_smoke
//! ```
//!
//! Four fault families, each on its own daemon:
//!
//! * mid-stream connection loss → resume replays byte-identically with
//!   gapless sequence numbers through the terminal frame,
//! * injected disk-write failures → the cache flips to degraded
//!   (memory-only) mode, requests keep succeeding, and a backoff probe
//!   recovers the disk tier once the fault clears,
//! * an injected handler panic → one structured 500, daemon healthy
//!   after,
//! * slow / failing socket writes → streams stay frame-correct, and a
//!   killed stream is recovered via resumption instead of resubmission.

#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns the real daemon binary with extra CLI args and extra
    /// environment (`MARCHGEND_FAILPOINTS` mainly), scraping the bound
    /// address from the stdout banner.
    fn spawn(extra_args: &[&str], env: &[(&str, &str)]) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_marchgend"));
        command
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in env {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("spawn marchgend");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("read banner");
        let addr = first_line
            .trim()
            .strip_prefix("marchgend listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {first_line:?}"))
            .to_owned();
        Daemon { child, addr }
    }

    /// One buffered HTTP exchange on a fresh connection.
    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut wire = String::new();
        stream.read_to_string(&mut wire).expect("read response");
        let status: u16 = wire
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response {wire:?}"));
        let body = wire
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    /// Arms failpoints through the admin endpoint.
    fn arm(&self, config: &str) {
        let (status, body) = self.request(
            "POST",
            "/v1/failpoints",
            &format!("{{\"config\": \"{config}\"}}"),
        );
        assert_eq!(status, 200, "arming {config:?}: {body}");
        assert!(body.contains("\"enabled\":true"), "{body}");
    }

    /// Disarms every failpoint through the admin endpoint.
    fn disarm_all(&self) {
        let (status, body) = self.request("POST", "/v1/failpoints", "{\"clear\": true}");
        assert_eq!(status, 200, "{body}");
    }

    fn shutdown(mut self) {
        let (status, _) = self.request("POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("poll daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit after shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Never leak a daemon from a panicking test: an orphan holds
        // the inherited stderr open and wedges piped test runs.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A `/v1/stream` connection being read frame by frame.
struct StreamConn {
    reader: BufReader<TcpStream>,
}

impl StreamConn {
    /// Opens a fresh stream: POST with a batch body, or GET with a
    /// resume query. Panics unless the daemon answers 200 chunked.
    fn open(addr: &str, path: &str, body: Option<&str>) -> StreamConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let mut conn = StreamConn {
            reader: BufReader::new(stream),
        };
        match body {
            Some(body) => write!(
                conn.reader.get_mut(),
                "POST {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            ),
            None => write!(
                conn.reader.get_mut(),
                "GET {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"
            ),
        }
        .expect("send stream request");
        let mut status_line = String::new();
        conn.reader.read_line(&mut status_line).expect("status");
        assert!(
            status_line.starts_with("HTTP/1.1 200"),
            "stream rejected: {status_line}"
        );
        loop {
            let mut header = String::new();
            conn.reader.read_line(&mut header).expect("header");
            if header.trim().is_empty() {
                break;
            }
        }
        conn
    }

    /// Reads the next frame line, tolerating mid-stream truncation
    /// (`None` on EOF or a broken chunk — exactly what an injected
    /// socket fault produces).
    fn next_frame(&mut self) -> Option<String> {
        // One frame is one chunk in this daemon; tolerate both a clean
        // terminal chunk and a torn connection.
        let mut size_line = String::new();
        if self.reader.read_line(&mut size_line).ok()? == 0 {
            return None;
        }
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        if size == 0 {
            return None;
        }
        let mut chunk = vec![0u8; size + 2]; // payload + CRLF
        self.reader.read_exact(&mut chunk).ok()?;
        let line = std::str::from_utf8(&chunk[..size]).ok()?.trim_end();
        Some(line.to_owned())
    }

    /// Drains the remaining frames until the stream ends.
    fn drain(&mut self) -> Vec<String> {
        let mut frames = Vec::new();
        while let Some(frame) = self.next_frame() {
            frames.push(frame);
        }
        frames
    }
}

/// Pulls `"batch_id":"…"` out of the announcement frame.
fn batch_id_of(frame: &str) -> String {
    frame
        .split_once("\"batch_id\":\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map(|(id, _)| id.to_owned())
        .unwrap_or_else(|| panic!("no batch_id in {frame}"))
}

/// Asserts frames carry the gapless sequence `start..` and end with the
/// terminal `completed` frame.
fn assert_sequenced(frames: &[String], start: u64) {
    assert!(!frames.is_empty(), "no frames");
    for (offset, frame) in frames.iter().enumerate() {
        let seq = start + offset as u64;
        assert!(
            frame.ends_with(&format!(",\"seq\":{seq}}}")),
            "expected seq {seq}: {frame}"
        );
    }
    assert!(
        frames
            .last()
            .unwrap()
            .starts_with("{\"event\":\"completed\""),
        "missing terminal frame: {frames:?}"
    );
}

/// A client that loses its connection mid-stream reconnects with the
/// resumption token and sees the missed frames replayed byte-for-byte,
/// in gapless sequence order, through the terminal frame — while the
/// batch itself never restarted.
#[test]
fn chaos_mid_stream_disconnect_resumes_byte_identical() {
    let daemon = Daemon::spawn(&["--workers", "2"], &[]);
    // Slow every socket write a little so the batch reliably outlives
    // the deliberately-early disconnect below.
    daemon.arm("daemon.socket.write=delay(20)");

    let body = r#"[{"faults": ["SAF"]}, {"faults": ["SAF", "TF"]}, {"faults": ["TF"]}]"#;
    let mut first = StreamConn::open(&daemon.addr, "/v1/stream", Some(body));
    let announcement = first.next_frame().expect("batch announcement frame");
    assert!(
        announcement.starts_with("{\"event\":\"batch\""),
        "{announcement}"
    );
    let batch_id = batch_id_of(&announcement);
    let mut seen = vec![announcement];
    seen.push(first.next_frame().expect("at least one progress frame"));
    // Hard disconnect, mid-batch.
    drop(first);

    // Reconnect from the start: the replay must begin with exactly the
    // frames already delivered, then continue to the terminal frame.
    let mut resumed = StreamConn::open(
        &daemon.addr,
        &format!("/v1/stream?resume={batch_id}&from=0"),
        None,
    );
    let frames = resumed.drain();
    assert!(frames.len() >= seen.len(), "{frames:?}");
    assert_eq!(
        &frames[..seen.len()],
        &seen[..],
        "replay must be byte-identical"
    );
    assert_sequenced(&frames, 0);
    assert!(
        frames
            .last()
            .unwrap()
            .contains("\"total\":3,\"succeeded\":3,\"failed\":0"),
        "{frames:?}"
    );

    // A second resume from a mid-stream cursor replays only the tail.
    let mut tail = StreamConn::open(
        &daemon.addr,
        &format!("/v1/stream?resume={batch_id}&from=2"),
        None,
    );
    let tail_frames = tail.drain();
    assert_eq!(&tail_frames[..], &frames[2..], "suffix replay");
    assert_sequenced(&tail_frames, 2);

    daemon.disarm_all();
    daemon.shutdown();
}

/// Disk-write faults flip the cache into degraded (memory-only) mode:
/// requests keep succeeding, `/v1/stats` reports `disk_degraded`, and
/// once the fault clears a backoff probe restores the disk tier.
#[test]
fn chaos_disk_faults_degrade_then_recover() {
    let cache_dir =
        std::env::temp_dir().join(format!("marchgend-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let daemon = Daemon::spawn(&["--cache-dir", cache_dir.to_str().unwrap()], &[]);

    // Every disk write fails "persistently" from now on.
    daemon.arm("cache.disk.write=err(injected: disk full)");

    // The computation still succeeds — the memory tier serves it.
    let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF"]}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verified\":true"), "{body}");
    let (_, stats) = daemon.request("GET", "/v1/stats", "");
    assert!(stats.contains("\"disk_degraded\":true"), "{stats}");
    assert!(!stats.contains("\"disk_write_failures\":0"), "{stats}");

    // The Prometheus view agrees: the injected fault shows up as failed
    // disk writes and the degraded-mode gauge flips to 1.
    let (status, metrics) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{metrics}");
    let write_failures: u64 = metrics
        .lines()
        .find_map(|line| line.strip_prefix("marchgend_cache_disk_write_failures_total "))
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or_else(|| panic!("no disk write-failure counter in:\n{metrics}"));
    assert!(write_failures >= 1, "{metrics}");
    assert!(
        metrics.contains("marchgend_cache_disk_degraded 1"),
        "{metrics}"
    );

    // While degraded, further requests neither fail nor touch the disk;
    // the memory tier replays the outcome.
    let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF"]}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache_hit\":true"), "{body}");

    // Clear the fault; after the 500ms initial backoff the next store
    // doubles as a recovery probe and the disk tier comes back.
    daemon.disarm_all();
    std::thread::sleep(Duration::from_millis(700));
    let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["TF"]}"#);
    assert_eq!(status, 200, "{body}");
    let (_, stats) = daemon.request("GET", "/v1/stats", "");
    assert!(stats.contains("\"disk_degraded\":false"), "{stats}");
    let persisted = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert!(persisted >= 1, "recovered store must persist entries");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A corrupt cache entry on disk is quarantined (renamed aside, counted
/// in `/v1/stats`), never served, and never poisons the request.
#[test]
fn chaos_corrupt_disk_entries_are_quarantined() {
    let cache_dir =
        std::env::temp_dir().join(format!("marchgend-chaos-rot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let request_body = r#"{"faults": ["SAF", "TF"]}"#;

    let first = Daemon::spawn(&["--cache-dir", cache_dir.to_str().unwrap()], &[]);
    let (status, _) = first.request("POST", "/v1/generate", request_body);
    assert_eq!(status, 200);
    first.shutdown();

    // Rot every persisted entry.
    let mut rotted = 0;
    for entry in std::fs::read_dir(&cache_dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "json") {
            std::fs::write(&path, b"{ not json at all").expect("corrupt entry");
            rotted += 1;
        }
    }
    assert!(rotted >= 1, "the first daemon must have persisted an entry");

    let second = Daemon::spawn(&["--cache-dir", cache_dir.to_str().unwrap()], &[]);
    let (status, body) = second.request("POST", "/v1/generate", request_body);
    assert_eq!(status, 200, "{body}");
    // Computed fresh — the rotted entry must not be served...
    assert!(body.contains("\"cache_hit\":false"), "{body}");
    let (_, stats) = second.request("GET", "/v1/stats", "");
    assert!(!stats.contains("\"disk_quarantined\":0"), "{stats}");
    // ...and it was renamed aside, not deleted, for post-mortems.
    let quarantined = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "quarantined"))
        .count();
    assert_eq!(quarantined, rotted, "every rotted entry quarantined");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// An injected panic inside a handler produces one structured 500 and
/// leaves the daemon fully healthy; injected handler errors surface as
/// structured `injected_fault` responses. Both clear on their own
/// (count-limited specs) — the "fault clears, service recovers" path,
/// configured through the environment variable rather than the admin
/// endpoint.
#[test]
fn chaos_handler_panics_and_errors_stay_structured() {
    let daemon = Daemon::spawn(
        &[],
        &[(
            "MARCHGEND_FAILPOINTS",
            "marchgend.generate=1*panic(injected chaos panic)",
        )],
    );

    // First request trips the panic: a structured 500, not a hang or a
    // dropped connection.
    let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF"]}"#);
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"code\":\"handler_panic\""), "{body}");

    // The panic burned its one charge: the daemon serves normally.
    let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF"]}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verified\":true"), "{body}");

    // Injected handler *errors* come back as structured 500s too.
    daemon.arm("marchgend.generate=2*err(injected handler fault)");
    for _ in 0..2 {
        let (status, body) = daemon.request("POST", "/v1/generate", r#"{"faults": ["TF"]}"#);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("\"code\":\"injected_fault\""), "{body}");
    }
    let (status, _) = daemon.request("POST", "/v1/generate", r#"{"faults": ["TF"]}"#);
    assert_eq!(status, 200, "the error spec burns down and service resumes");

    // The admin endpoint reflects reality: after a clear, nothing is
    // armed (burned count-limited sites stay listed until cleared).
    daemon.disarm_all();
    let (status, body) = daemon.request("GET", "/v1/failpoints", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"enabled\":true"), "{body}");
    assert!(body.contains("\"failpoints\":[]"), "{body}");
    daemon.shutdown();
}

/// A panic injected into the `/metrics` render path produces one
/// structured 500 and must not poison the registry: the very next
/// scrape succeeds with every family intact. (Registry locks recover
/// poisoned state instead of propagating it.)
#[test]
fn chaos_metrics_panic_does_not_poison_registry() {
    let daemon = Daemon::spawn(&[], &[]);

    // Baseline: a healthy scrape with the always-on families present.
    let (status, baseline) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{baseline}");
    assert!(baseline.contains("marchgend_build_info"), "{baseline}");

    daemon.arm("marchgend.metrics=1*panic(injected metrics panic)");
    let (status, body) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"code\":\"handler_panic\""), "{body}");

    // The panic burned its one charge and left the registry usable:
    // the next scrape renders the full catalog again.
    let (status, recovered) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{recovered}");
    for family in [
        "marchgend_build_info",
        "marchgend_http_requests_total",
        "marchgend_cache_misses_total",
        "marchgend_metrics_scrapes_total",
        "marchgend_uptime_seconds",
    ] {
        assert!(recovered.contains(family), "missing {family}:\n{recovered}");
    }
    // Injected handler *errors* on the same site surface structured too.
    daemon.arm("marchgend.metrics=1*err(injected metrics fault)");
    let (status, body) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"code\":\"injected_fault\""), "{body}");
    let (status, _) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "the error spec burns down and scrapes resume");
    daemon.disarm_all();
    daemon.shutdown();
}

/// Socket-write faults: slow writes keep streams frame-correct, and a
/// stream killed by a write fault is recovered through resumption — the
/// batch result is never lost and never recomputed.
#[test]
fn chaos_socket_faults_truncate_but_resume_recovers() {
    let daemon = Daemon::spawn(&["--workers", "2"], &[]);

    // Kill the next few stream writes: the client sees a torn stream.
    daemon.arm("daemon.socket.write=2*err(injected write fault)");
    let body = r#"[{"faults": ["SAF"]}, {"faults": ["TF"]}]"#;
    let mut torn = StreamConn::open(&daemon.addr, "/v1/stream", Some(body));
    let torn_frames = torn.drain();
    drop(torn);
    assert!(
        torn_frames.is_empty()
            || !torn_frames
                .last()
                .unwrap()
                .starts_with("{\"event\":\"completed\""),
        "the injected write fault must tear the stream: {torn_frames:?}"
    );

    // The batch finished server-side regardless; find it via stats and
    // resume it. (The torn client may not even have seen the batch_id.)
    daemon.disarm_all();
    let (_, stats) = daemon.request("GET", "/v1/stats", "");
    assert!(stats.contains("\"retained\":1"), "{stats}");

    // Run a fresh slow stream end to end: delays must not corrupt
    // framing, and this stream's token then proves resumption works
    // after delay-type faults too.
    daemon.arm("daemon.socket.write=delay(15)");
    let mut slow = StreamConn::open(&daemon.addr, "/v1/stream", Some(body));
    let slow_frames = slow.drain();
    assert_sequenced(&slow_frames, 0);
    let batch_id = batch_id_of(&slow_frames[0]);
    daemon.disarm_all();

    let mut replay = StreamConn::open(
        &daemon.addr,
        &format!("/v1/stream?resume={batch_id}&from=0"),
        None,
    );
    assert_eq!(replay.drain(), slow_frames, "byte-identical after faults");
    daemon.shutdown();
}
