//! Token-level lint for the Prometheus text exposition served at
//! `GET /metrics` — the `rtl_golden` approach applied to the metrics
//! wire format. The lint is exercised three ways: against a synthetic
//! registry stuffed with hostile label values, against hand-written
//! malformed expositions (every rule must actually fire), and against
//! a live `marchgend` daemon (CI job `metrics-lint`). A final case
//! checks `?trace=1` span trees stay consistent with the
//! `Diagnostics` micros fields they are derived from.

use marchgen::json::Json;
use marchgen::obs::Registry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

// ---------------------------------------------------------------------------
// The lint
// ---------------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line: `name{labels} value`.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses a sample line, returning `Err(reason)` for any token-level
/// violation (bad name charset, unescaped label value, missing value).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unterminated label block: {line}"))?;
            if close < brace {
                return Err(format!("mismatched braces: {line}"));
            }
            (&line[..brace], &line[brace..=close])
        }
        None => {
            let space = line
                .find(' ')
                .ok_or_else(|| format!("sample without value: {line}"))?;
            (&line[..space], "")
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}: {line}"));
    }
    let mut labels = Vec::new();
    if !rest.is_empty() {
        let inner = &rest[1..rest.len() - 1];
        let mut chars = inner.chars().peekable();
        while chars.peek().is_some() {
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                key.push(c);
            }
            if !valid_label_name(&key) {
                return Err(format!("invalid label name {key:?}: {line}"));
            }
            if chars.next() != Some('"') {
                return Err(format!("label value for {key:?} not quoted: {line}"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => {
                            return Err(format!(
                                "invalid escape \\{} in label {key:?}: {line}",
                                other.map_or(String::from("<eol>"), String::from)
                            ))
                        }
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed {
                return Err(format!("unterminated label value for {key:?}: {line}"));
            }
            labels.push((key, value));
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(other) => {
                    return Err(format!("unexpected {other:?} after label value: {line}"))
                }
            }
        }
    }
    let value_text = line[name_part.len() + rest.len()..].trim();
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        text => text
            .parse()
            .map_err(|_| format!("unparseable sample value {text:?}: {line}"))?,
    };
    Ok(Sample {
        name: name_part.to_owned(),
        labels,
        value,
    })
}

/// Maps a sample's metric name back to its family: histogram series
/// carry `_bucket`/`_sum`/`_count` suffixes on the family name.
fn family_of<'a>(sample_name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    sample_name
}

/// Token-level lint of one exposition. Returns every violation found:
/// families must declare `# HELP` and `# TYPE` (with a known kind)
/// before their samples, names and label values must be well-formed
/// and escaped, histogram buckets must be cumulative with a trailing
/// `+Inf` bucket matching `_count`, and `_sum`/`_count` must be
/// present and consistent.
fn lint_exposition(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut samples: Vec<Sample> = Vec::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if let Some(rest) = comment.strip_prefix("HELP ") {
                match rest.split_once(' ') {
                    Some((name, _help)) if valid_metric_name(name) => {
                        helps.insert(name.to_owned());
                    }
                    _ => violations.push(format!("malformed HELP line: {line}")),
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                match rest.split_once(' ') {
                    Some((name, kind)) if valid_metric_name(name) => {
                        if !matches!(kind, "counter" | "gauge" | "histogram") {
                            violations.push(format!("unknown TYPE kind {kind:?}: {line}"));
                        }
                        if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                            violations.push(format!("duplicate TYPE for {name}: {line}"));
                        }
                    }
                    _ => violations.push(format!("malformed TYPE line: {line}")),
                }
            } else {
                violations.push(format!("unknown comment directive: {line}"));
            }
            continue;
        }
        match parse_sample(line) {
            Ok(sample) => {
                let family = family_of(&sample.name, &types).to_owned();
                if !types.contains_key(&family) {
                    violations.push(format!("sample before/without # TYPE: {line}"));
                }
                if !helps.contains(&family) {
                    violations.push(format!("sample before/without # HELP: {line}"));
                }
                samples.push(sample);
            }
            Err(violation) => violations.push(violation),
        }
    }

    // Histogram structure: group bucket series by (family, labels
    // minus `le`), then check le ordering, cumulative counts, the
    // terminal +Inf bucket and the _count/_sum companions.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut sums: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for sample in &samples {
        let family = family_of(&sample.name, &types).to_owned();
        if types.get(&family).map(String::as_str) != Some("histogram") {
            continue;
        }
        let base_labels: Vec<(String, String)> = sample
            .labels
            .iter()
            .filter(|(key, _)| key != "le")
            .cloned()
            .collect();
        let key = (family.clone(), base_labels);
        if sample.name.ends_with("_bucket") {
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str());
            match le {
                Some("+Inf") => buckets
                    .entry(key)
                    .or_default()
                    .push((f64::INFINITY, sample.value)),
                Some(bound) => match bound.parse::<f64>() {
                    Ok(bound) => buckets.entry(key).or_default().push((bound, sample.value)),
                    Err(_) => violations.push(format!("unparseable le bound {bound:?}")),
                },
                None => violations.push(format!("{}_bucket sample without le label", key.0)),
            }
        } else if sample.name.ends_with("_sum") {
            sums.insert(key, sample.value);
        } else if sample.name.ends_with("_count") {
            counts.insert(key, sample.value);
        }
    }
    for (key, series) in &buckets {
        let label = format!("{}{:?}", key.0, key.1);
        for window in series.windows(2) {
            if window[0].0 >= window[1].0 {
                violations.push(format!("{label}: le bounds not increasing"));
            }
            if window[0].1 > window[1].1 {
                violations.push(format!("{label}: bucket counts not cumulative"));
            }
        }
        match series.last() {
            Some((bound, total)) if bound.is_infinite() => match counts.get(key) {
                Some(count) if count == total => {}
                Some(count) => {
                    violations.push(format!("{label}: _count {count} != +Inf bucket {total}"))
                }
                None => violations.push(format!("{label}: missing _count series")),
            },
            _ => violations.push(format!("{label}: missing le=\"+Inf\" bucket")),
        }
        if !sums.contains_key(key) {
            violations.push(format!("{label}: missing _sum series"));
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Offline cases
// ---------------------------------------------------------------------------

#[test]
fn synthetic_registry_with_hostile_labels_is_lint_clean() {
    let registry = Registry::new();
    registry
        .counter(
            "hostile_total",
            "Help with a \\ backslash\nand a newline.",
            &[("name", "quote\" backslash\\ newline\n done")],
        )
        .add(7);
    registry.gauge("plain_gauge", "A gauge.", &[]).set(-3);
    let h = registry.histogram(
        "spread_microseconds",
        "A histogram.",
        &[("phase", "verify")],
        &[10, 100, 1000],
    );
    for value in [5, 50, 500, 5000] {
        h.observe(value);
    }
    let text = registry.render();
    let violations = lint_exposition(&text);
    assert!(violations.is_empty(), "{violations:#?}\n---\n{text}");
}

#[test]
fn lint_catches_malformed_expositions() {
    let cases: &[(&str, &str)] = &[
        ("missing HELP", "# TYPE x counter\nx 1\n"),
        ("missing TYPE", "# HELP x Help.\nx 1\n"),
        ("unknown kind", "# HELP x H.\n# TYPE x summary\nx 1\n"),
        (
            "unescaped quote",
            "# HELP x H.\n# TYPE x counter\nx{a=\"b\"c\"} 1\n",
        ),
        (
            "bad escape",
            "# HELP x H.\n# TYPE x counter\nx{a=\"b\\q\"} 1\n",
        ),
        ("no value", "# HELP x H.\n# TYPE x counter\nx\n"),
        (
            "bad value",
            "# HELP x H.\n# TYPE x counter\nx{a=\"b\"} one\n",
        ),
        (
            "non-cumulative buckets",
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
             h_sum 9\nh_count 5\n",
        ),
        (
            "missing +Inf bucket",
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_sum 3\nh_count 2\n",
        ),
        (
            "count disagrees with +Inf",
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 7\n",
        ),
        (
            "missing _sum",
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
        ),
    ];
    for (label, text) in cases {
        let violations = lint_exposition(text);
        assert!(
            !violations.is_empty(),
            "lint must reject case {label:?}:\n{text}"
        );
    }
}

// ---------------------------------------------------------------------------
// Live-daemon cases (the CI `metrics-lint` job)
// ---------------------------------------------------------------------------

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_marchgend"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn marchgend");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("read listen line");
        let addr = first_line
            .trim()
            .strip_prefix("marchgend listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {first_line:?}"))
            .to_owned();
        Daemon { child, addr }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: marchgend\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut wire = String::new();
        stream.read_to_string(&mut wire).expect("read response");
        let status: u16 = wire
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response {wire:?}"));
        let body = wire
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn shutdown(self) {
        let (status, _) = self.request("POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn live_daemon_exposition_is_lint_clean_and_covers_key_families() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    // Touch every subsystem so the owned families exist: a cold
    // generate (phases + solver), its warm repeat (cache hit), an RTL
    // render, a streamed batch, and a stats snapshot.
    let (status, _) = daemon.request("POST", "/v1/generate", r#"{"faults": ["SAF", "TF"]}"#);
    assert_eq!(status, 200);
    let (status, _) = daemon.request("POST", "/v1/generate", r#"{"faults": ["TF", "SAF"]}"#);
    assert_eq!(status, 200);
    let (status, _) = daemon.request("POST", "/v1/rtl", r#"{"march": "March C-"}"#);
    assert_eq!(status, 200);
    let (status, _) = daemon.request("POST", "/v1/stream", r#"[{"faults": ["SAF"]}]"#);
    assert_eq!(status, 200);
    let (status, _) = daemon.request("GET", "/v1/stats", "");
    assert_eq!(status, 200);

    let (status, text) = daemon.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{text}");
    let violations = lint_exposition(&text);
    assert!(violations.is_empty(), "{violations:#?}\n---\n{text}");

    // The catalog's key families, spanning every wired layer.
    for family in [
        "marchgend_build_info",
        "marchgend_uptime_seconds",
        "marchgend_http_requests_total",
        "marchgend_http_request_duration_microseconds_bucket",
        "marchgend_phase_duration_microseconds_bucket",
        "marchgend_solver_outcomes_total",
        "marchgend_verifier_outcomes_total",
        "marchgend_cache_hits_total{tier=\"memory\"}",
        "marchgend_cache_misses_total",
        "marchgend_rtl_cache_hits_total",
        "marchgend_limiter_decisions_total{outcome=\"allow\"}",
        "marchgend_rejected_total{reason=\"queue_full\"}",
        "marchgend_streams_started_total",
        "marchgend_stream_frames_published_total",
        "marchgend_stream_ring_frames",
        "marchgend_in_flight",
        "marchgend_metrics_scrapes_total",
    ] {
        assert!(text.contains(family), "missing family {family}:\n{text}");
    }
    // Generator phases cover the whole pipeline decomposition.
    for phase in [
        "expand", "search", "solve", "schedule", "verify", "request", "decode",
    ] {
        let series = format!("marchgend_phase_duration_microseconds_bucket{{phase=\"{phase}\"");
        assert!(text.contains(&series), "missing phase {phase}:\n{text}");
    }
    // The verifier-outcome family carries the full fixed backend
    // vocabulary from the first scrape (zeros, not gaps), and the
    // computed SAF+TF requests above actually landed on the packed
    // 64-lane backend the auto heuristic selects for that list.
    for backend in ["simulator", "bitsim", "widesim", "none"] {
        let series = format!("marchgend_verifier_outcomes_total{{backend=\"{backend}\"}}");
        assert!(text.contains(&series), "missing backend {backend}:\n{text}");
    }
    let bitsim_count = text
        .lines()
        .find_map(|line| {
            line.strip_prefix("marchgend_verifier_outcomes_total{backend=\"bitsim\"} ")
        })
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("bitsim verifier counter present");
    assert!(
        bitsim_count >= 1,
        "computed SAF+TF outcome should count under bitsim:\n{text}"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Trace consistency: diagnostics.trace sums match the micros fields
// ---------------------------------------------------------------------------

fn span_child<'a>(node: &'a Json, name: &str) -> Option<&'a Json> {
    node.get("children")?
        .as_array()?
        .iter()
        .find(|child| child.get("name").and_then(Json::as_str) == Some(name))
}

fn span_micros(node: &Json) -> i64 {
    node.get("micros").and_then(Json::as_int).expect("micros")
}

#[test]
fn traced_generate_matches_diagnostics_micros() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    // Cold request: computed, so the trace synthesizes the generator's
    // phase spans from the Diagnostics micros.
    let (status, body) = daemon.request(
        "POST",
        "/v1/generate?trace=1",
        r#"{"faults": ["SAF", "TF", "CFin"]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("outcome JSON");
    let diagnostics = doc.get("diagnostics").expect("diagnostics block");
    assert_eq!(
        diagnostics.get("cache_hit").and_then(Json::as_bool),
        Some(false),
        "{body}"
    );
    let trace = diagnostics
        .get("trace")
        .expect("trace block under diagnostics");
    assert_eq!(trace.get("name").and_then(Json::as_str), Some("request"));
    let decode = span_child(trace, "decode").expect("decode span");
    assert!(span_micros(decode) >= 0);
    let generate = span_child(trace, "generate").expect("generate span");
    let render = span_child(trace, "render").expect("render span");
    assert!(span_micros(render) >= 0);
    // The request span's wall time bounds its children's.
    assert!(span_micros(trace) >= span_micros(generate));

    // Phase spans replicate the Diagnostics micros exactly, and
    // search = solve + schedule by construction.
    for phase in ["expand", "search", "verify"] {
        let span =
            span_child(generate, phase).unwrap_or_else(|| panic!("missing {phase} span in {body}"));
        let field = format!("{phase}_micros");
        assert_eq!(
            span_micros(span),
            diagnostics
                .get(&field)
                .and_then(Json::as_int)
                .expect("micros field"),
            "{phase} span must equal diagnostics.{field}: {body}"
        );
    }
    let search = span_child(generate, "search").expect("search span");
    let solve = span_child(search, "solve").expect("solve span");
    let schedule = span_child(search, "schedule").expect("schedule span");
    assert_eq!(
        span_micros(solve) + span_micros(schedule),
        span_micros(search),
        "solve + schedule must partition search: {body}"
    );

    // Warm repeat via the header spelling: still traced, but a cache
    // hit synthesizes no phase children (its Diagnostics describe the
    // original computation, not this request).
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = r#"{"faults": ["CFin", "TF", "SAF"]}"#;
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nhost: x\r\nx-trace: 1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send traced request");
    let mut wire = String::new();
    stream.read_to_string(&mut wire).expect("read response");
    let warm = wire.split_once("\r\n\r\n").map(|(_, b)| b).expect("body");
    let warm_doc = Json::parse(warm).expect("warm outcome JSON");
    let warm_diagnostics = warm_doc.get("diagnostics").expect("diagnostics");
    assert_eq!(
        warm_diagnostics.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "{warm}"
    );
    let warm_trace = warm_diagnostics
        .get("trace")
        .expect("trace on cache hits too");
    let warm_generate = span_child(warm_trace, "generate").expect("generate span");
    assert!(
        warm_generate.get("children").is_none(),
        "cache hits must not synthesize phase spans: {warm}"
    );

    // An untraced request carries no trace block at all.
    let (status, plain) = daemon.request("POST", "/v1/generate", body);
    assert_eq!(status, 200, "{plain}");
    assert!(!plain.contains("\"trace\""), "{plain}");
    daemon.shutdown();
}
