//! Determinism of the sharded in-request candidate search: the worker
//! thread count is a pure wall-clock knob. Running the same request on
//! 1, 2 and 8 shard workers must yield **byte-identical**
//! `GenerateOutcome` JSON once the (inherently run-varying) wall-clock
//! timings are normalized — every other field, down to the per-shard
//! timing *count* and the candidate-complexity frontier, is exact.

#![cfg(feature = "serde")]

use marchgen::json::ToJson;
use marchgen::prelude::*;

/// Zeroes the wall-clock fields; everything else must match exactly.
/// The *number* of shard timings is preserved — it equals the unique TP
/// set count and must not depend on the thread count.
fn normalized_json(mut outcome: GenerateOutcome) -> String {
    outcome.diagnostics.expand_micros = 0;
    outcome.diagnostics.search_micros = 0;
    outcome.diagnostics.verify_micros = 0;
    outcome.diagnostics.shard_micros = vec![0; outcome.diagnostics.shard_micros.len()];
    outcome.to_json_pretty()
}

#[test]
fn sharded_search_json_is_byte_identical_across_thread_counts() {
    for faults in [
        "SAF, TF",
        "SAF, TF, ADF, CFin",
        "CFid<u,1>, CFid<d,1>",
        "CFin, CFid",
    ] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_check_redundancy(true);
        let reference = normalized_json(generate(&base.clone().with_search_threads(1)).unwrap());
        for threads in [2usize, 8] {
            let sharded =
                normalized_json(generate(&base.clone().with_search_threads(threads)).unwrap());
            assert_eq!(
                sharded, reference,
                "{faults}: {threads} shard workers diverged from serial"
            );
        }
    }
}

/// The inexact local-search backend is deterministic too: its restart
/// RNG is fixed-seeded and per-instance, so outcomes (including the
/// solver iteration/restart diagnostics) are byte-identical across
/// shard worker counts.
#[test]
fn local_search_solver_json_is_byte_identical_across_thread_counts() {
    use marchgen::SolverChoice;
    for faults in ["SAF, TF", "CFid<u,1>, CFid<d,1>", "CFin, CFid"] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_solver(SolverChoice::LocalSearch)
            .with_check_redundancy(true);
        let reference = normalized_json(generate(&base.clone().with_search_threads(1)).unwrap());
        for threads in [2usize, 8] {
            let sharded =
                normalized_json(generate(&base.clone().with_search_threads(threads)).unwrap());
            assert_eq!(
                sharded, reference,
                "{faults}: local search with {threads} shard workers diverged"
            );
        }
    }
}

/// The verifier backend is *not* supposed to leak into the outcome
/// either: scalar and bit-parallel verification serialize identically.
#[test]
fn verifier_backend_does_not_change_outcome_json() {
    for faults in ["SAF, CFin", "CFid<u,0>, CFid<u,1>"] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_check_redundancy(true);
        let scalar =
            normalized_json(generate(&base.clone().with_verifier(VerifierChoice::Scalar)).unwrap());
        let packed = normalized_json(
            generate(&base.clone().with_verifier(VerifierChoice::BitParallel)).unwrap(),
        );
        assert_eq!(packed, scalar, "{faults}");
    }
}
