//! Determinism of the sharded in-request candidate search and the
//! sharded verify phase: the worker thread count is a pure wall-clock
//! knob. Running the same request on 1, 2 and 8 shard workers must
//! yield **byte-identical** `GenerateOutcome` JSON once the (inherently
//! run-varying) wall-clock timings are normalized — every other field,
//! down to the per-shard timing *counts* and the candidate-complexity
//! frontier, is exact. Likewise, swapping the verification backend
//! (scalar / bitsim / wide) must never change what the pipeline
//! computes, only how fast.

#![cfg(feature = "serde")]

use marchgen::json::ToJson;
use marchgen::prelude::*;

/// Zeroes the wall-clock fields; everything else must match exactly.
/// The *number* of search shard timings is preserved — it equals the
/// unique TP set count — and so is the number of verify shard timings —
/// the verify shard plan is data-defined. Neither may depend on the
/// thread count.
fn normalized_json(mut outcome: GenerateOutcome) -> String {
    outcome.diagnostics.expand_micros = 0;
    outcome.diagnostics.search_micros = 0;
    outcome.diagnostics.verify_micros = 0;
    outcome.diagnostics.shard_micros = vec![0; outcome.diagnostics.shard_micros.len()];
    outcome.diagnostics.verify_shard_micros =
        vec![0; outcome.diagnostics.verify_shard_micros.len()];
    outcome.to_json_pretty()
}

/// Additionally blanks the fields that legitimately identify the
/// verification backend (`diagnostics.verifier`, and the shard-timing
/// *count*, which differs per backend) — for cross-backend comparisons,
/// where everything else must still match byte-for-byte.
fn backend_normalized_json(mut outcome: GenerateOutcome) -> String {
    outcome.diagnostics.verifier = String::new();
    outcome.diagnostics.verify_shard_micros = Vec::new();
    normalized_json(outcome)
}

#[test]
fn sharded_search_json_is_byte_identical_across_thread_counts() {
    for faults in [
        "SAF, TF",
        "SAF, TF, ADF, CFin",
        "CFid<u,1>, CFid<d,1>",
        "CFin, CFid",
    ] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_check_redundancy(true);
        let reference = normalized_json(generate(&base.clone().with_search_threads(1)).unwrap());
        for threads in [2usize, 8] {
            let sharded =
                normalized_json(generate(&base.clone().with_search_threads(threads)).unwrap());
            assert_eq!(
                sharded, reference,
                "{faults}: {threads} shard workers diverged from serial"
            );
        }
    }
}

/// The wide backend's sharded verify phase is deterministic too: the
/// shard plan is cut from the fault list, not the worker count, so 1, 2
/// and 8 workers produce byte-identical JSON — including the length of
/// `verify_shard_micros`.
#[test]
fn sharded_verify_json_is_byte_identical_across_thread_counts() {
    for faults in ["SAF, CFin", "SAF, TF, ADF, CFin", "CFin, CFid"] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_verifier(VerifierChoice::Wide)
            .with_check_redundancy(true);
        let reference = normalized_json(generate(&base.clone().with_search_threads(1)).unwrap());
        for threads in [2usize, 8] {
            let sharded =
                normalized_json(generate(&base.clone().with_search_threads(threads)).unwrap());
            assert_eq!(
                sharded, reference,
                "{faults}: {threads} verify shard workers diverged from serial"
            );
        }
    }
}

/// The inexact local-search backend is deterministic too: its restart
/// RNG is fixed-seeded and per-instance, so outcomes (including the
/// solver iteration/restart diagnostics) are byte-identical across
/// shard worker counts.
#[test]
fn local_search_solver_json_is_byte_identical_across_thread_counts() {
    use marchgen::SolverChoice;
    for faults in ["SAF, TF", "CFid<u,1>, CFid<d,1>", "CFin, CFid"] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_solver(SolverChoice::LocalSearch)
            .with_check_redundancy(true);
        let reference = normalized_json(generate(&base.clone().with_search_threads(1)).unwrap());
        for threads in [2usize, 8] {
            let sharded =
                normalized_json(generate(&base.clone().with_search_threads(threads)).unwrap());
            assert_eq!(
                sharded, reference,
                "{faults}: local search with {threads} shard workers diverged"
            );
        }
    }
}

/// The verifier backend is *not* supposed to leak into the outcome:
/// scalar, bit-parallel and wide verification serialize identically
/// once the backend-identity diagnostics (`verifier`, per-shard verify
/// timings) are blanked.
#[test]
fn verifier_backend_does_not_change_outcome_json() {
    for faults in ["SAF, CFin", "CFid<u,0>, CFid<u,1>"] {
        let base = GenerateRequest::from_fault_list(faults)
            .unwrap()
            .with_check_redundancy(true);
        let scalar = backend_normalized_json(
            generate(&base.clone().with_verifier(VerifierChoice::Scalar)).unwrap(),
        );
        for choice in [VerifierChoice::BitParallel, VerifierChoice::Wide] {
            let packed =
                backend_normalized_json(generate(&base.clone().with_verifier(choice)).unwrap());
            assert_eq!(packed, scalar, "{faults} via {choice}");
        }
    }
}
